package cpu

import (
	"testing"
	"testing/quick"
)

// flatMem is a simple flat test memory with an optional fault window.
type flatMem struct {
	data      []byte
	faultFrom uint32
	faultTo   uint32 // exclusive; 0,0 = never fault
}

func (m *flatMem) fault(va uint32, n uint32) bool {
	return m.faultTo > m.faultFrom && va+n > m.faultFrom && va < m.faultTo
}

func (m *flatMem) Load32(va uint32) (uint32, *Fault) {
	if m.fault(va, 4) || int(va)+4 > len(m.data) {
		return 0, &Fault{VA: va, Access: Read}
	}
	d := m.data[va:]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

func (m *flatMem) Store32(va uint32, v uint32) *Fault {
	if m.fault(va, 4) || int(va)+4 > len(m.data) {
		return &Fault{VA: va, Access: Write}
	}
	d := m.data[va:]
	d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

func (m *flatMem) Load8(va uint32) (byte, *Fault) {
	if m.fault(va, 1) || int(va) >= len(m.data) {
		return 0, &Fault{VA: va, Access: Read}
	}
	return m.data[va], nil
}

func (m *flatMem) Store8(va uint32, v byte) *Fault {
	if m.fault(va, 1) || int(va) >= len(m.data) {
		return &Fault{VA: va, Access: Write}
	}
	m.data[va] = v
	return nil
}

func (m *flatMem) Fetch32(va uint32) (uint32, *Fault) {
	v, f := m.Load32(va)
	if f != nil {
		f.Access = Exec
	}
	return v, f
}

// load assembles instructions at address 0.
func load(m *flatMem, instrs ...Instr) {
	va := uint32(0)
	for _, in := range instrs {
		w0, w1 := in.Encode()
		if f := m.Store32(va, w0); f != nil {
			panic(f)
		}
		if f := m.Store32(va+4, w1); f != nil {
			panic(f)
		}
		va += InstrSize
	}
}

// run steps until a non-None trap or limit instructions.
func run(t *testing.T, r *Regs, m Memory, limit int) Trap {
	t.Helper()
	for i := 0; i < limit; i++ {
		_, tr := Step(r, m)
		if tr.Kind != TrapNone {
			return tr
		}
	}
	t.Fatal("run: instruction limit exceeded")
	return Trap{}
}

func TestArithmetic(t *testing.T) {
	m := &flatMem{data: make([]byte, 4096)}
	load(m,
		Instr{Op: OpMovi, Rd: 0, Imm: 10},
		Instr{Op: OpMovi, Rd: 1, Imm: 3},
		Instr{Op: OpAdd, Rd: 2, Rs: 0, Rt: 1},     // 13
		Instr{Op: OpSub, Rd: 3, Rs: 0, Rt: 1},     // 7
		Instr{Op: OpMul, Rd: 4, Rs: 0, Rt: 1},     // 30
		Instr{Op: OpAddi, Rd: 5, Rs: 2, Imm: 100}, // 113
		Instr{Op: OpXor, Rd: 6, Rs: 0, Rt: 0},     // 0
		Instr{Op: OpHalt},
	)
	var r Regs
	tr := run(t, &r, m, 100)
	if tr.Kind != TrapHalt {
		t.Fatalf("trap = %v, want halt", tr.Kind)
	}
	want := [8]uint32{10, 3, 13, 7, 30, 113, 0, 0}
	for i, w := range want {
		if r.R[i] != w {
			t.Errorf("R%d = %d, want %d", i, r.R[i], w)
		}
	}
}

func TestLoadStoreAndBranchLoop(t *testing.T) {
	m := &flatMem{data: make([]byte, 8192)}
	// Sum bytes 0..9 stored at 4096.. into R2.
	for i := 0; i < 10; i++ {
		m.data[4096+i] = byte(i + 1)
	}
	load(m,
		Instr{Op: OpMovi, Rd: 0, Imm: 4096}, // ptr
		Instr{Op: OpMovi, Rd: 1, Imm: 10},   // count
		Instr{Op: OpMovi, Rd: 2, Imm: 0},    // sum
		Instr{Op: OpMovi, Rd: 3, Imm: 0},    // i
		// loop @ 4*8=32:
		Instr{Op: OpBeq, Rs: 3, Rt: 1, Imm: 9 * InstrSize}, // if i==count goto end
		Instr{Op: OpLdb, Rd: 4, Rs: 0, Imm: 0},
		Instr{Op: OpAdd, Rd: 2, Rs: 2, Rt: 4},
		Instr{Op: OpAddi, Rd: 0, Rs: 0, Imm: 1},
		Instr{Op: OpAddi, Rd: 3, Rs: 3, Imm: 1},
		Instr{Op: OpJmp, Imm: 4 * InstrSize},
		// end @ 9*8=72 (intentionally placed after jmp):
	)
	// place halt at entry 10 (the BEQ target is 9*8=72? recompute: instrs
	// indices 0..9; target "end" is index 10 at 80).
	m2 := &flatMem{data: make([]byte, 8192)}
	copy(m2.data, m.data)
	load(m2,
		Instr{Op: OpMovi, Rd: 0, Imm: 4096},
		Instr{Op: OpMovi, Rd: 1, Imm: 10},
		Instr{Op: OpMovi, Rd: 2, Imm: 0},
		Instr{Op: OpMovi, Rd: 3, Imm: 0},
		Instr{Op: OpBeq, Rs: 3, Rt: 1, Imm: 10 * InstrSize},
		Instr{Op: OpLdb, Rd: 4, Rs: 0, Imm: 0},
		Instr{Op: OpAdd, Rd: 2, Rs: 2, Rt: 4},
		Instr{Op: OpAddi, Rd: 0, Rs: 0, Imm: 1},
		Instr{Op: OpAddi, Rd: 3, Rs: 3, Imm: 1},
		Instr{Op: OpJmp, Imm: 4 * InstrSize},
		Instr{Op: OpHalt},
	)
	for i := 0; i < 10; i++ {
		m2.data[4096+i] = byte(i + 1)
	}
	var r Regs
	tr := run(t, &r, m2, 1000)
	if tr.Kind != TrapHalt {
		t.Fatalf("trap = %v, want halt", tr.Kind)
	}
	if r.R[2] != 55 {
		t.Fatalf("sum = %d, want 55", r.R[2])
	}
}

func TestCallRet(t *testing.T) {
	m := &flatMem{data: make([]byte, 4096)}
	load(m,
		Instr{Op: OpCall, Imm: 3 * InstrSize}, // call fn
		Instr{Op: OpHalt},                     // after return
		Instr{Op: OpNop},
		Instr{Op: OpMovi, Rd: 0, Imm: 42}, // fn:
		Instr{Op: OpRet},
	)
	var r Regs
	tr := run(t, &r, m, 100)
	if tr.Kind != TrapHalt || r.R[0] != 42 {
		t.Fatalf("trap=%v R0=%d, want halt 42", tr.Kind, r.R[0])
	}
	if r.R[LR] != InstrSize {
		t.Fatalf("LR = %#x, want %#x", r.R[LR], InstrSize)
	}
}

func TestSyscallTrapViaCall(t *testing.T) {
	m := &flatMem{data: make([]byte, 4096)}
	load(m,
		Instr{Op: OpCall, Imm: SyscallEntry(5)},
		Instr{Op: OpHalt},
	)
	var r Regs
	_, tr := Step(&r, m) // executes CALL
	if tr.Kind != TrapNone {
		t.Fatalf("CALL trapped: %v", tr.Kind)
	}
	if r.PC != SyscallEntry(5) {
		t.Fatalf("PC = %#x, want entry 5", r.PC)
	}
	_, tr = Step(&r, m)
	if tr.Kind != TrapSyscall || tr.Sys != 5 {
		t.Fatalf("trap = %v sys=%d, want syscall 5", tr.Kind, tr.Sys)
	}
	// Kernel completes the call: return to LR.
	r.PC = r.R[LR]
	_, tr = Step(&r, m)
	if tr.Kind != TrapHalt {
		t.Fatalf("after return, trap = %v, want halt", tr.Kind)
	}
}

func TestSyscallEntrypointRewrite(t *testing.T) {
	// The kernel can re-point a trapped thread at a different entrypoint
	// (cond_wait -> mutex_lock); the next step must trap with the new
	// number and the same LR.
	m := &flatMem{data: make([]byte, 4096)}
	load(m,
		Instr{Op: OpCall, Imm: SyscallEntry(7)},
		Instr{Op: OpHalt},
	)
	var r Regs
	Step(&r, m)
	_, tr := Step(&r, m)
	if tr.Sys != 7 {
		t.Fatalf("sys = %d", tr.Sys)
	}
	lr := r.R[LR]
	r.PC = SyscallEntry(9) // kernel rewrites the continuation
	_, tr = Step(&r, m)
	if tr.Kind != TrapSyscall || tr.Sys != 9 {
		t.Fatalf("after rewrite: %v sys=%d, want syscall 9", tr.Kind, tr.Sys)
	}
	if r.R[LR] != lr {
		t.Fatal("LR changed by entrypoint rewrite")
	}
}

func TestPreciseFaultLeavesStateUnchanged(t *testing.T) {
	m := &flatMem{data: make([]byte, 8192), faultFrom: 4096, faultTo: 8192}
	load(m,
		Instr{Op: OpMovi, Rd: 0, Imm: 4096},
		Instr{Op: OpLd, Rd: 1, Rs: 0, Imm: 0},
		Instr{Op: OpHalt},
	)
	var r Regs
	Step(&r, m) // movi
	before := r
	_, tr := Step(&r, m)
	if tr.Kind != TrapFault {
		t.Fatalf("trap = %v, want fault", tr.Kind)
	}
	if tr.Fault.VA != 4096 || tr.Fault.Access != Read {
		t.Fatalf("fault = %+v", tr.Fault)
	}
	if r != before {
		t.Fatalf("registers changed across fault: %+v -> %+v", before, r)
	}
	// Resolve the fault and resume: execution continues transparently.
	m.faultTo = 0
	m.Store32(4096, 0xDEADBEEF)
	_, tr = Step(&r, m)
	if tr.Kind != TrapNone || r.R[1] != 0xDEADBEEF {
		t.Fatalf("resume failed: %v R1=%#x", tr.Kind, r.R[1])
	}
}

func TestStoreFault(t *testing.T) {
	m := &flatMem{data: make([]byte, 8192), faultFrom: 4096, faultTo: 8192}
	load(m,
		Instr{Op: OpMovi, Rd: 0, Imm: 4096},
		Instr{Op: OpMovi, Rd: 1, Imm: 7},
		Instr{Op: OpSt, Rs: 0, Rt: 1, Imm: 0},
	)
	var r Regs
	Step(&r, m)
	Step(&r, m)
	_, tr := Step(&r, m)
	if tr.Kind != TrapFault || tr.Fault.Access != Write {
		t.Fatalf("trap = %v %+v, want write fault", tr.Kind, tr.Fault)
	}
}

func TestIllegalInstruction(t *testing.T) {
	m := &flatMem{data: make([]byte, 4096)}
	m.Store32(0, uint32(opMax)<<24)
	var r Regs
	_, tr := Step(&r, m)
	if tr.Kind != TrapIllegal {
		t.Fatalf("trap = %v, want illegal", tr.Kind)
	}
}

func TestBranchVariants(t *testing.T) {
	cases := []struct {
		op    Opcode
		a, b  uint32
		taken bool
	}{
		{OpBeq, 5, 5, true}, {OpBeq, 5, 6, false},
		{OpBne, 5, 6, true}, {OpBne, 5, 5, false},
		{OpBlt, 4, 5, true}, {OpBlt, 5, 5, false}, {OpBlt, 6, 5, false},
		{OpBge, 5, 5, true}, {OpBge, 6, 5, true}, {OpBge, 4, 5, false},
	}
	for _, c := range cases {
		m := &flatMem{data: make([]byte, 4096)}
		load(m,
			Instr{Op: OpMovi, Rd: 0, Imm: c.a},
			Instr{Op: OpMovi, Rd: 1, Imm: c.b},
			Instr{Op: c.op, Rs: 0, Rt: 1, Imm: 5 * InstrSize},
			Instr{Op: OpMovi, Rd: 2, Imm: 1}, // not taken path
			Instr{Op: OpHalt},
			Instr{Op: OpMovi, Rd: 2, Imm: 2}, // taken path
			Instr{Op: OpHalt},
		)
		var r Regs
		run(t, &r, m, 100)
		want := uint32(1)
		if c.taken {
			want = 2
		}
		if r.R[2] != want {
			t.Errorf("%v(%d,%d): path=%d want %d", c.op, c.a, c.b, r.R[2], want)
		}
	}
}

func TestShifts(t *testing.T) {
	m := &flatMem{data: make([]byte, 4096)}
	load(m,
		Instr{Op: OpMovi, Rd: 0, Imm: 1},
		Instr{Op: OpMovi, Rd: 1, Imm: 12},
		Instr{Op: OpShl, Rd: 2, Rs: 0, Rt: 1}, // 4096
		Instr{Op: OpShr, Rd: 3, Rs: 2, Rt: 1}, // 1
		Instr{Op: OpHalt},
	)
	var r Regs
	run(t, &r, m, 100)
	if r.R[2] != 4096 || r.R[3] != 1 {
		t.Fatalf("R2=%d R3=%d", r.R[2], r.R[3])
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs, rt uint8, imm uint32) bool {
		in := Instr{
			Op: Opcode(op % uint8(opMax)),
			Rd: int(rd % NumRegs), Rs: int(rs % NumRegs), Rt: int(rt % NumRegs),
			Imm: imm,
		}
		w0, w1 := in.Encode()
		out := Decode(w0, w1)
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSyscallNumRoundTrip(t *testing.T) {
	for n := 0; n < MaxSyscalls; n++ {
		if got := SyscallNum(SyscallEntry(n)); got != n {
			t.Fatalf("SyscallNum(SyscallEntry(%d)) = %d", n, got)
		}
	}
	if SyscallNum(0) != -1 || SyscallNum(SyscallBase+3) != -1 {
		t.Fatal("non-entry PCs must return -1")
	}
	if SyscallNum(SyscallBase+MaxSyscalls*InstrSize) != -1 {
		t.Fatal("past-the-end PC must return -1")
	}
}

func TestDisassemblerCoversAllOpcodes(t *testing.T) {
	for op := Opcode(0); op < opMax; op++ {
		in := Instr{Op: op, Rd: 1, Rs: 2, Rt: 3, Imm: 0x10}
		if s := in.String(); s == "" {
			t.Errorf("empty disassembly for %v", op)
		}
	}
}

// Property: Step on a fault never mutates registers (precise exceptions).
func TestPropertyFaultsArePrecise(t *testing.T) {
	f := func(seed uint8) bool {
		m := &flatMem{data: make([]byte, 8192), faultFrom: 4096, faultTo: 8192}
		ops := []Opcode{OpLd, OpSt, OpLdb, OpStb}
		op := ops[int(seed)%len(ops)]
		load(m, Instr{Op: op, Rd: 1, Rs: 0, Rt: 2, Imm: 0})
		var r Regs
		r.R[0] = 4096 + uint32(seed)*13%4096
		before := r
		_, tr := Step(&r, m)
		return tr.Kind == TrapFault && r == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
