package cpu

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// fakeMem is a flat DecodedSource covering [0, size): a stand-in for the
// MMU that mimics its contract — stores bump a per-page store generation,
// DecodedPageFor revalidates against it, misaligned or out-of-range
// accesses fault.
type fakeMem struct {
	data     []byte
	gens     []uint64
	pages    []*DecodedPage
	noFast   bool
	noBlocks bool
	exec     ExecStats
}

func newFakeMem(pages int) *fakeMem {
	return &fakeMem{
		data:  make([]byte, pages*mem.PageSize),
		gens:  make([]uint64, pages),
		pages: make([]*DecodedPage, pages),
	}
}

func (m *fakeMem) clone() *fakeMem {
	c := newFakeMem(len(m.gens))
	copy(c.data, m.data)
	return c
}

func (m *fakeMem) fault(va uint32, acc Access) *Fault { return &Fault{VA: va, Access: acc} }

func (m *fakeMem) Load32(va uint32) (uint32, *Fault) {
	if va%4 != 0 || int(va)+4 > len(m.data) {
		return 0, m.fault(va, Read)
	}
	d := m.data[va:]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

func (m *fakeMem) Store32(va uint32, v uint32) *Fault {
	if va%4 != 0 || int(va)+4 > len(m.data) {
		return m.fault(va, Write)
	}
	m.gens[va/mem.PageSize]++
	d := m.data[va:]
	d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

func (m *fakeMem) Load8(va uint32) (byte, *Fault) {
	if int(va) >= len(m.data) {
		return 0, m.fault(va, Read)
	}
	return m.data[va], nil
}

func (m *fakeMem) Store8(va uint32, v byte) *Fault {
	if int(va) >= len(m.data) {
		return m.fault(va, Write)
	}
	m.gens[va/mem.PageSize]++
	m.data[va] = v
	return nil
}

func (m *fakeMem) Fetch32(va uint32) (uint32, *Fault) {
	if va%4 != 0 || int(va)+4 > len(m.data) {
		return 0, m.fault(va, Exec)
	}
	d := m.data[va:]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

func (m *fakeMem) DecodedPageFor(pc uint32) *DecodedPage {
	if m.noFast {
		return nil
	}
	vpn := int(pc / mem.PageSize)
	if vpn >= len(m.pages) {
		return nil
	}
	p := m.pages[vpn]
	if p == nil {
		p = new(DecodedPage)
		p.Reset(&m.gens[vpn])
		m.exec.PagesDecoded++
		m.pages[vpn] = p
	} else if p.Stale() {
		m.exec.BlockInvalidations += uint64(p.BuiltBlocks())
		p.Reset(&m.gens[vpn])
		m.exec.PagesDecoded++
		m.exec.StaleResets++
	}
	p.NoBlocks = m.noBlocks
	return p
}

func (m *fakeMem) ExecStats() *ExecStats { return &m.exec }

// stepRef runs the reference per-instruction loop with the same budget
// semantics as StepN.
func stepRef(r *Regs, m Memory, maxCycles uint64) (uint64, uint64, Trap) {
	var cycles, retired uint64
	for {
		cyc, trap := Step(r, m)
		cycles += cyc
		if trap.Kind != TrapNone {
			return cycles, retired, trap
		}
		retired++
		if cycles >= maxCycles {
			return cycles, retired, Trap{Kind: TrapNone}
		}
	}
}

// genProgram fills the first two pages with a random but loop-heavy
// instruction mix: ALU ops, in-range branches, loads/stores into the data
// page (and occasionally the code pages — self-modifying), and rare jumps
// to syscall entries or bad opcodes.
func genProgram(m *fakeMem, rng *rand.Rand) {
	codeWords := 2 * mem.PageSize / InstrSize
	dataBase := uint32(2 * mem.PageSize)
	for i := 0; i < codeWords; i++ {
		pc := uint32(i * InstrSize)
		var in Instr
		switch p := rng.Intn(100); {
		case p < 45: // ALU
			in = Instr{
				Op: []Opcode{OpMovi, OpMov, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpAddi}[rng.Intn(11)],
				Rd: rng.Intn(NumRegs), Rs: rng.Intn(NumRegs), Rt: rng.Intn(NumRegs),
				Imm: rng.Uint32() % 1024,
			}
		case p < 70: // branch within the code pages, 8-aligned
			in = Instr{
				Op: []Opcode{OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpCall, OpRet}[rng.Intn(7)],
				Rs: rng.Intn(NumRegs), Rt: rng.Intn(NumRegs),
				Imm: uint32(rng.Intn(codeWords)) * InstrSize,
			}
		case p < 90: // memory traffic in the data page
			in = Instr{
				Op: []Opcode{OpLd, OpSt, OpLdb, OpStb}[rng.Intn(4)],
				Rd: rng.Intn(NumRegs), Rs: 0, Rt: rng.Intn(NumRegs),
				Imm: dataBase + uint32(rng.Intn(mem.PageSize/4))*4,
			}
		case p < 94: // self-modifying store into the code pages
			in = Instr{Op: OpSt, Rs: 0, Rt: rng.Intn(NumRegs),
				Imm: uint32(rng.Intn(codeWords)) * InstrSize}
		case p < 96: // syscall entry
			in = Instr{Op: OpJmp, Imm: SyscallEntry(rng.Intn(MaxSyscalls))}
		case p < 98: // illegal
			in = Instr{Op: opMax + Opcode(rng.Intn(10))}
		default: // halt / brk
			in = Instr{Op: []Opcode{OpHalt, OpBrk}[rng.Intn(2)]}
		}
		w0, imm := in.Encode()
		m.Store32(pc, w0)
		m.Store32(pc+4, imm)
	}
	for i := range m.gens {
		m.gens[i] = 0
	}
}

// TestStepNEquivalenceFuzz: StepN must be observably identical to the
// per-instruction Step loop — same registers, memory, cycles, retirements
// and trap — over random programs and budgets. The generated programs
// include self-modifying stores into the executing code pages (4% of
// instructions), so fused-block invalidation mid-block is fuzzed here,
// not just unit-tested; between batches, random DMA-style writes mutate
// code bytes directly and bump the store generation, the same signal
// device DMA and frame recycling raise.
func TestStepNEquivalenceFuzz(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		proto := newFakeMem(3)
		genProgram(proto, rng)
		var protoRegs Regs
		for i := range protoRegs.R {
			protoRegs.R[i] = rng.Uint32() % 256
		}

		// Drive repeated batches, as runThread would, so decode caches
		// persist across StepN calls.
		mFast, mRef := proto.clone(), proto.clone()
		rFast, rRef := protoRegs, protoRegs
		for round := 0; round < 20; round++ {
			if rng.Intn(4) == 0 {
				// DMA write to a code page: bytes change without a CPU
				// store. The fast side must see the generation bump and
				// drop decoded slots and fused blocks.
				va := uint32(rng.Intn(2*mem.PageSize)) &^ 3
				w := rng.Uint32()
				for i, b := range []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)} {
					mFast.data[va+uint32(i)] = b
					mRef.data[va+uint32(i)] = b
				}
				mFast.gens[va/mem.PageSize]++
				mRef.gens[va/mem.PageSize]++
			}
			budget := uint64(1 + rng.Intn(4000))
			fc, fr, ft := StepN(&rFast, mFast, budget)
			rc, rr, rt := stepRef(&rRef, mRef, budget)
			if fc != rc || fr != rr || ft != rt {
				t.Fatalf("seed %d round %d: (cycles,retired,trap) fast=(%d,%d,%+v) ref=(%d,%d,%+v)",
					seed, round, fc, fr, ft, rc, rr, rt)
			}
			if rFast != rRef {
				t.Fatalf("seed %d round %d: registers diverge\nfast: %+v\nref:  %+v", seed, round, rFast, rRef)
			}
			if !bytes.Equal(mFast.data, mRef.data) {
				t.Fatalf("seed %d round %d: memory diverges", seed, round)
			}
			if ft.Kind == TrapHalt || ft.Kind == TrapIllegal || ft.Kind == TrapFault {
				break // terminal for this PC; next seed
			}
			if ft.Kind == TrapSyscall {
				// Pretend the kernel completed the call: resume past it.
				rFast.PC, rRef.PC = rFast.R[LR], rRef.R[LR]
				if rFast.PC%InstrSize != 0 {
					break
				}
			}
		}
	}
}

// TestStepNSelfModifyingCode: a store that overwrites an already-executed
// (and therefore cached) instruction must invalidate the decode so the
// next execution sees the new instruction.
func TestStepNSelfModifyingCode(t *testing.T) {
	m := newFakeMem(3)
	// Target instruction at 0x40, initially "movi r3, 1".
	tw0, _ := Instr{Op: OpMovi, Rd: 3, Imm: 1}.Encode()
	m.Store32(0x40, tw0)
	m.Store32(0x44, 1)
	// Replacement: "movi r3, 2".
	nw0, _ := Instr{Op: OpMovi, Rd: 3, Imm: 2}.Encode()

	pc := uint32(0)
	emit := func(in Instr) {
		w0, imm := in.Encode()
		m.Store32(pc, w0)
		m.Store32(pc+4, imm)
		pc += InstrSize
	}
	emit(Instr{Op: OpCall, Imm: 0x40})             // execute target once (caches it), returns to 8
	emit(Instr{Op: OpMovi, Rd: 1, Imm: nw0})       // r1 = new word0
	emit(Instr{Op: OpMovi, Rd: 2, Imm: 2})         // r2 = new imm
	emit(Instr{Op: OpSt, Rs: 0, Rt: 1, Imm: 0x40}) // overwrite word0
	emit(Instr{Op: OpSt, Rs: 0, Rt: 2, Imm: 0x44}) // overwrite imm
	emit(Instr{Op: OpCall, Imm: 0x40})             // re-execute target
	emit(Instr{Op: OpHalt})
	// The called instruction at 0x40 falls through to 0x48: a Ret there.
	m.Store32(0x48, func() uint32 { w0, _ := Instr{Op: OpRet}.Encode(); return w0 }())

	ref := m.clone() // pristine image for the per-instruction reference

	var r Regs
	cycles, retired, trap := StepN(&r, m, 1<<20)
	if trap.Kind != TrapHalt {
		t.Fatalf("trap = %+v, want halt", trap)
	}
	if r.R[3] != 2 {
		t.Fatalf("r3 = %d: stale decoded instruction executed after overwrite", r.R[3])
	}

	var rRef Regs
	refCycles, refRetired, refTrap := stepRef(&rRef, ref, 1<<20)
	if refTrap.Kind != TrapHalt || rRef != r || refCycles != cycles || refRetired != retired {
		t.Fatalf("fast/slow diverge on self-modifying code:\nfast: %+v cyc=%d ret=%d trap=%+v\nref:  %+v cyc=%d ret=%d trap=%+v",
			r, cycles, retired, trap, rRef, refCycles, refRetired, refTrap)
	}
	if !bytes.Equal(m.data, ref.data) {
		t.Fatal("memory diverges after self-modifying run")
	}
}
