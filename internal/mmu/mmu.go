// Package mmu implements the simulated memory-management hardware and the
// Fluke memory-mapping hierarchy: address spaces translate virtual
// addresses through per-page PTEs; Regions export memory; Mappings import
// (part of) a Region into an address space.
//
// The PTE table is a pure cache of the Mapping/Region state, which gives
// the simulation the two fault flavours Table 3 of the paper measures:
//
//   - a soft page fault is one "for which the kernel can derive a page
//     table entry based on an entry higher in the memory mapping
//     hierarchy": the VA is covered by a Mapping whose source Region page
//     is present (or demand-zero), so the kernel installs a PTE and
//     restarts;
//   - a hard page fault needs an RPC to a user-level memory manager: the
//     Region page is absent and the Region names a pager.
package mmu

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// Perm is a page-protection bit set.
type Perm uint8

// Protection bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// PermRW and PermRWX are common combinations.
const (
	PermRW  = PermRead | PermWrite
	PermRWX = PermRead | PermWrite | PermExec
)

func (p Perm) String() string {
	s := [3]byte{'-', '-', '-'}
	if p&PermRead != 0 {
		s[0] = 'r'
	}
	if p&PermWrite != 0 {
		s[1] = 'w'
	}
	if p&PermExec != 0 {
		s[2] = 'x'
	}
	return string(s[:])
}

// accPerm maps an access class to the protection bit it needs; indexing a
// table is cheaper than a switch on the translation fast path.
var accPerm = [3]Perm{cpu.Read: PermRead, cpu.Write: PermWrite, cpu.Exec: PermExec}

func needs(acc cpu.Access) Perm { return accPerm[acc] }

// Region is an exportable range of memory (Fluke's Region object state).
// Pages are backed lazily: a page is either present (has a frame), demand-
// zero (the kernel may materialize a zero frame on first touch — a soft
// fault), or pager-backed (a user-mode memory manager must provide it — a
// hard fault).
type Region struct {
	Size       uint32 // bytes, page multiple
	DemandZero bool   // absent pages may be materialized as zero frames
	Pager      any    // opaque pager identity (a kernel Port); nil if none

	frames []*mem.Frame

	// watchers are the address spaces currently importing this region, one
	// entry per installed mapping. PTEs (and TLB entries) are pure caches
	// of the Mapping/Region state, so Populate and Evict flush the derived
	// translations of the affected page through this list — no space can
	// keep a translation to a replaced frame.
	watchers []*AddrSpace

	// Dirty-page tracking (incremental checkpointing). While trackDirty is
	// set, the first store to each page — and every operation that changes
	// a page's backing-frame identity or sharing structure — logs the
	// page-aligned offset into dirty. The mechanism is the pte track bit
	// (see the pte type): it never raises a fault, never charges a cycle,
	// and never counts in Faults, so tracking is invisible to virtual time
	// exactly like the TLB and decode caches.
	trackDirty bool
	dirty      map[uint32]struct{}
}

// NewRegion creates a region of size bytes (rounded up to pages).
func NewRegion(size uint32, demandZero bool) *Region {
	size = mem.PageRound(size)
	return &Region{
		Size:       size,
		DemandZero: demandZero,
		frames:     make([]*mem.Frame, size/mem.PageSize),
	}
}

// Pages returns the number of pages in the region.
func (r *Region) Pages() int { return len(r.frames) }

// FrameAt returns the frame backing the page containing offset off, or nil.
func (r *Region) FrameAt(off uint32) *mem.Frame {
	if off >= r.Size {
		return nil
	}
	return r.frames[off/mem.PageSize]
}

// Populate installs a frame for the page containing offset off, replacing
// any previous frame (which is returned so the caller can free it).
// Derived translations of the page are flushed in every importing space.
func (r *Region) Populate(off uint32, f *mem.Frame) *mem.Frame {
	if off >= r.Size {
		panic(fmt.Sprintf("mmu: Populate offset %#x beyond region size %#x", off, r.Size))
	}
	old := r.frames[off/mem.PageSize]
	r.frames[off/mem.PageSize] = f
	if old != f {
		r.flushDerived(mem.PageTrunc(off))
		r.MarkDirty(off) // frame identity changed under the tracker
	}
	return old
}

// Evict removes and returns the frame backing the page at off, if any.
// Subsequent touches fault again (soft if demand-zero, hard if pager-backed).
// Derived translations of the page are flushed in every importing space.
func (r *Region) Evict(off uint32) *mem.Frame {
	if off >= r.Size {
		return nil
	}
	f := r.frames[off/mem.PageSize]
	r.frames[off/mem.PageSize] = nil
	if f != nil {
		r.flushDerived(mem.PageTrunc(off))
	}
	return f
}

// Repoint replaces the frame backing the page at off, like Populate, but
// instead of flushing watchers' derived translations it re-derives each
// installed PTE in place: the entry is updated to the new frame with
// exactly the permission a refault would install (the mapping's, minus
// write while the frame is copy-on-write). Pages never translated stay
// lazy. Devices use this when replacing a frame they are about to DMA
// into — breaking a COW share from outside the MMU's store path — so the
// importing spaces keep their translations hot instead of each paying a
// soft fault on the next touch.
func (r *Region) Repoint(off uint32, f *mem.Frame) *mem.Frame {
	if off >= r.Size {
		panic(fmt.Sprintf("mmu: Repoint offset %#x beyond region size %#x", off, r.Size))
	}
	old := r.frames[off/mem.PageSize]
	r.frames[off/mem.PageSize] = f
	if old == f {
		return old
	}
	r.MarkDirty(off) // frame identity changed under the tracker
	po := mem.PageTrunc(off)
	for _, as := range r.watchers {
		for _, m := range as.mappings {
			if m.Region != r || po < m.RegionOff || po-m.RegionOff >= m.Size {
				continue
			}
			vpn := mem.VPN(m.Base + (po - m.RegionOff))
			if _, ok := as.pt[vpn]; !ok {
				continue
			}
			perm := m.Perm
			if f.Cow {
				perm &^= PermWrite
			}
			as.flushSlot(vpn)
			as.pt[vpn] = pte{frame: f, perm: perm}
			if e := &as.icache[vpn%icSize]; e.page != nil && e.vpn == vpn {
				*e = icEntry{}
			}
		}
	}
	return old
}

// flushDerived drops cached translations of the region page at off from
// every space importing it.
func (r *Region) flushDerived(off uint32) {
	for _, as := range r.watchers {
		for _, m := range as.mappings {
			if m.Region == r && off >= m.RegionOff && off-m.RegionOff < m.Size {
				as.FlushPage(m.Base + (off - m.RegionOff))
			}
		}
	}
}

func (r *Region) addWatcher(as *AddrSpace) {
	r.watchers = append(r.watchers, as)
}

func (r *Region) dropWatcher(as *AddrSpace) {
	for i, w := range r.watchers {
		if w == as {
			r.watchers = append(r.watchers[:i], r.watchers[i+1:]...)
			return
		}
	}
}

// PresentPages counts populated pages.
func (r *Region) PresentPages() int {
	n := 0
	for _, f := range r.frames {
		if f != nil {
			n++
		}
	}
	return n
}

// StartDirtyTracking begins (or restarts) dirty-page tracking: the dirty
// set is cleared and every installed translation of the region is armed
// with the pte track bit, so the next store through it logs its page
// before proceeding. Arming downgrades only TLB slots and sets a bit the
// translation slow path resolves silently — no fault is raised, no cycle
// charged, no Faults counted — so a tracked run is bit-identical in
// virtual time to an untracked one (unlike write-protecting the pages,
// which would be ambiguous with the lazy COW-upgrade soft faults the
// zero-copy path charges for).
//
// Tracking state is per region, not per snapshot consumer: interleaving
// two independent delta chains over one region resets each other's dirty
// sets. The checkpoint layer documents this as one-chain-per-region.
func (r *Region) StartDirtyTracking() {
	r.trackDirty = true
	if r.dirty == nil {
		r.dirty = make(map[uint32]struct{})
	} else {
		clear(r.dirty)
	}
	for _, as := range r.watchers {
		for _, m := range as.mappings {
			if m.Region == r {
				as.armTrackRange(m.Base, m.Size)
			}
		}
	}
}

// StopDirtyTracking ends tracking. Stale track bits left in page tables
// resolve silently on the next store (MarkDirty is a no-op once tracking
// is off), so no disarm walk is needed.
func (r *Region) StopDirtyTracking() { r.trackDirty = false }

// DirtyTracking reports whether the region is tracking stores.
func (r *Region) DirtyTracking() bool { return r.trackDirty }

// MarkDirty logs the page containing offset off as modified. The
// translation slow path calls it on the first tracked store; operations
// that change a page's frame identity or sharing structure outside the
// store path (Populate, Repoint, COW resolution, device DMA) call it
// directly. No-op when tracking is off or off is out of range.
func (r *Region) MarkDirty(off uint32) {
	if !r.trackDirty || off >= r.Size {
		return
	}
	r.dirty[mem.PageTrunc(off)] = struct{}{}
}

// IsDirty reports whether the page containing off has been logged since
// tracking (re)started.
func (r *Region) IsDirty(off uint32) bool {
	_, ok := r.dirty[mem.PageTrunc(off)]
	return ok
}

// DirtyCount returns the number of logged pages.
func (r *Region) DirtyCount() int { return len(r.dirty) }

// Mapping imports [RegionOff, RegionOff+Size) of Region at [Base,
// Base+Size) in a destination address space (Fluke's Mapping object state).
type Mapping struct {
	Region    *Region
	RegionOff uint32
	Base      uint32
	Size      uint32
	Perm      Perm
}

// Contains reports whether the mapping covers va.
func (m *Mapping) Contains(va uint32) bool {
	return va >= m.Base && va-m.Base < m.Size
}

// regionOffFor translates a covered va to its region offset.
func (m *Mapping) regionOffFor(va uint32) uint32 {
	return m.RegionOff + (va - m.Base)
}

type pte struct {
	frame *mem.Frame
	perm  Perm
	// track arms dirty-page logging: the entry keeps its write permission,
	// but the TLB is only ever filled without the write bit while track is
	// set, so the first store falls through to translate, which logs the
	// page into its region's dirty set, clears the bit, and completes the
	// access — silently, with no fault and no cycles. probe refuses write
	// access while track is set so DirectWindow copies cannot bypass the
	// log (they fall back to the per-word path, which is bit-identical).
	track bool
}

// The software TLB: a small direct-mapped cache consulted before the pt
// map on every access, exactly as hardware TLBs cache hardware page
// tables. Entries are a strict subset of pt (filled only from pt hits),
// and every path that drops a PTE drops the matching TLB slot, so the TLB
// can never hold a translation the page table lacks. A zeroed slot has
// perm == 0 and therefore never hits.
//
// The capacity is per-AddrSpace (DefaultTLBSize unless NewAddrSpaceTLB
// says otherwise); shrinking it only changes wall-clock cost, never
// virtual time, so tests can run tiny TLBs to stress eviction and
// invalidation paths.

// DefaultTLBSize is the TLB capacity used by NewAddrSpace.
const DefaultTLBSize = 256

type tlbEntry struct {
	vpn   uint32
	perm  Perm // 0 = invalid slot
	frame *mem.Frame
}

// icSize is the number of direct-mapped decoded-instruction page slots
// per address space (see DecodedPageFor).
const icSize = 64

type icEntry struct {
	vpn   uint32
	frame *mem.Frame
	page  *cpu.DecodedPage
	// thrash counts consecutive stale resets of this same page that
	// discarded fused blocks. A page that keeps dirtying itself (a
	// self-modifying loop, a DMA target) pays block-build cost on every
	// reset for blocks that never get to amortize it; past
	// blockThrashLimit the entry stops building blocks and runs from
	// decode slots alone. Repointing the entry at a different page
	// clears the count.
	thrash uint8
}

// blockThrashLimit is the number of block-discarding stale resets of one
// page after which fused-block building is disabled for that page.
const blockThrashLimit = 8

// FaultClass classifies a page fault (paper Table 3 terminology).
type FaultClass uint8

const (
	// FaultFatal: no mapping covers the address, or protection denies
	// the access. The thread gets an exception.
	FaultFatal FaultClass = iota
	// FaultSoft: the kernel can derive the PTE from the mapping
	// hierarchy without leaving the kernel.
	FaultSoft
	// FaultHard: a user-mode pager must provide the page (exception IPC).
	FaultHard
	// FaultCOW: a store hit a copy-on-write frame shared by zero-copy
	// IPC. A soft flavour — the kernel resolves it without leaving the
	// kernel, by copying the page (breaking the share) or, when the
	// sharing has already dissolved, by restoring write permission.
	FaultCOW
)

func (c FaultClass) String() string {
	switch c {
	case FaultFatal:
		return "fatal"
	case FaultSoft:
		return "soft"
	case FaultHard:
		return "hard"
	case FaultCOW:
		return "cow"
	}
	return "fault?"
}

// AddrSpace is the translation state of one Fluke Space. It implements
// cpu.Memory. All 32-bit accesses must be 4-byte aligned (misalignment
// faults, as on a trap-on-misalign machine).
type AddrSpace struct {
	alloc    *mem.Allocator
	pt       map[uint32]pte // vpn -> pte
	mappings []*Mapping
	io       []ioWindow // device register windows (see mmio.go)

	// tlb caches recent pt entries (see tlbEntry); icache caches decoded
	// instructions per executable page. Both are invisible to virtual
	// time: they change only wall-clock cost, never cycles or Stats.
	tlb      []tlbEntry
	tlbMask  uint32
	icache   [icSize]icEntry
	noFast   bool // caches disabled (equivalence testing)
	noBlocks bool // threaded-code tier disabled (Config.DisableThreadedCode)

	// exec counts decode-cache and fused-block events (see
	// cpu.ExecStats); host-side diagnostics, invisible to virtual time.
	exec cpu.ExecStats

	// Faults counts translation faults taken through this space
	// (diagnostics and tests).
	Faults uint64
}

// NewAddrSpace creates an empty address space drawing demand-zero frames
// from alloc, with the default TLB capacity.
func NewAddrSpace(alloc *mem.Allocator) *AddrSpace {
	return NewAddrSpaceTLB(alloc, DefaultTLBSize)
}

// NewAddrSpaceTLB is NewAddrSpace with an explicit TLB capacity. size is
// rounded up to a power of two (the TLB is direct-mapped on a vpn mask);
// size <= 0 selects DefaultTLBSize.
func NewAddrSpaceTLB(alloc *mem.Allocator, size int) *AddrSpace {
	if size <= 0 {
		size = DefaultTLBSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &AddrSpace{
		alloc:   alloc,
		pt:      make(map[uint32]pte),
		tlb:     make([]tlbEntry, n),
		tlbMask: uint32(n - 1),
	}
}

// TLBSize returns the TLB capacity.
func (as *AddrSpace) TLBSize() int { return len(as.tlb) }

// Allocator exposes the backing allocator (the pager uses it).
func (as *AddrSpace) Allocator() *mem.Allocator { return as.alloc }

// Map installs a mapping. Overlapping an existing mapping is an error.
// Base, RegionOff and Size must be page-aligned and the mapped window must
// lie within the region.
func (as *AddrSpace) Map(m *Mapping) error {
	if m.Base%mem.PageSize != 0 || m.Size%mem.PageSize != 0 || m.RegionOff%mem.PageSize != 0 {
		return fmt.Errorf("mmu: unaligned mapping base=%#x off=%#x size=%#x", m.Base, m.RegionOff, m.Size)
	}
	if m.Size == 0 {
		return fmt.Errorf("mmu: empty mapping")
	}
	if m.Region == nil || m.RegionOff+m.Size > m.Region.Size || m.RegionOff+m.Size < m.RegionOff {
		return fmt.Errorf("mmu: mapping window [%#x,+%#x) outside region", m.RegionOff, m.Size)
	}
	if m.Base+m.Size < m.Base && m.Base+m.Size != 0 {
		return fmt.Errorf("mmu: mapping wraps address space")
	}
	for _, ex := range as.mappings {
		if m.Base < ex.Base+ex.Size && ex.Base < m.Base+m.Size {
			return fmt.Errorf("mmu: mapping [%#x,+%#x) overlaps [%#x,+%#x)", m.Base, m.Size, ex.Base, ex.Size)
		}
	}
	as.mappings = append(as.mappings, m)
	m.Region.addWatcher(as)
	return nil
}

// Unmap removes the given mapping and flushes its PTEs. It reports whether
// the mapping was installed.
func (as *AddrSpace) Unmap(m *Mapping) bool {
	for i, ex := range as.mappings {
		if ex == m {
			as.mappings = append(as.mappings[:i], as.mappings[i+1:]...)
			m.Region.dropWatcher(as)
			as.FlushRange(m.Base, m.Size)
			return true
		}
	}
	return false
}

// MappingAt returns the mapping covering va, or nil.
func (as *AddrSpace) MappingAt(va uint32) *Mapping {
	for _, m := range as.mappings {
		if m.Contains(va) {
			return m
		}
	}
	return nil
}

// Mappings returns the installed mappings (do not mutate).
func (as *AddrSpace) Mappings() []*Mapping { return as.mappings }

// SetProtection changes a mapping's protection and flushes its PTEs so the
// new protection takes effect on the next access.
func (as *AddrSpace) SetProtection(m *Mapping, p Perm) {
	m.Perm = p
	as.FlushRange(m.Base, m.Size)
}

// FlushRange drops cached PTEs (and TLB/icache entries) covering
// [base, base+size). When the range spans more pages than the page table
// holds, it iterates the installed PTEs instead of every vpn in the range,
// so flushing a huge sparsely-mapped window stays cheap.
func (as *AddrSpace) FlushRange(base, size uint32) {
	if size == 0 {
		return
	}
	first := mem.VPN(base)
	last := mem.VPN(base + size - 1)
	pages := uint64(last-first) + 1
	if pages > uint64(len(as.pt)) {
		for vpn := range as.pt {
			if vpn >= first && vpn <= last {
				delete(as.pt, vpn)
			}
		}
	} else {
		for vpn := first; vpn <= last; vpn++ {
			delete(as.pt, vpn)
			if vpn == last { // guard wrap-around
				break
			}
		}
	}
	if pages >= uint64(len(as.tlb)) {
		clear(as.tlb[:])
	} else {
		for vpn := first; vpn <= last; vpn++ {
			as.flushSlot(vpn)
			if vpn == last { // guard wrap-around
				break
			}
		}
	}
	if pages >= icSize {
		clear(as.icache[:])
	} else {
		for vpn := first; vpn <= last; vpn++ {
			if e := &as.icache[vpn%icSize]; e.page != nil && e.vpn == vpn {
				*e = icEntry{}
			}
			if vpn == last { // guard wrap-around
				break
			}
		}
	}
}

// flushSlot invalidates the TLB slot for vpn if it holds that vpn.
func (as *AddrSpace) flushSlot(vpn uint32) {
	if e := &as.tlb[vpn&as.tlbMask]; e.perm != 0 && e.vpn == vpn {
		*e = tlbEntry{}
	}
}

// FlushPage drops the cached PTE (and TLB/icache entries) for the page
// containing va.
func (as *AddrSpace) FlushPage(va uint32) {
	vpn := mem.VPN(va)
	delete(as.pt, vpn)
	as.flushSlot(vpn)
	if e := &as.icache[vpn%icSize]; e.page != nil && e.vpn == vpn {
		*e = icEntry{}
	}
}

// SetThreadedCode enables or disables the fused-block (threaded-code)
// interpreter tier for this space. Off, StepN still uses the decode
// cache but dispatches one instruction at a time. Cached pages are
// flushed so existing DecodedPages pick up the new setting.
func (as *AddrSpace) SetThreadedCode(on bool) {
	as.noBlocks = !on
	clear(as.icache[:])
}

// ExecStats returns this space's decode-cache and fused-block counters.
func (as *AddrSpace) ExecStats() *cpu.ExecStats { return &as.exec }

// SetFastPaths enables or disables the TLB, decoded-instruction cache and
// direct-window copy paths. Disabling (equivalence testing) also drops any
// cached state; results must be bit-identical either way.
func (as *AddrSpace) SetFastPaths(on bool) {
	as.noFast = !on
	clear(as.tlb[:])
	clear(as.icache[:])
}

// Present reports whether the page containing va has a PTE granting acc.
func (as *AddrSpace) Present(va uint32, acc cpu.Access) bool {
	e, ok := as.pt[mem.VPN(va)]
	return ok && e.perm&needs(acc) != 0
}

// PTEs returns the number of installed PTEs.
func (as *AddrSpace) PTEs() int { return len(as.pt) }

// Classify decides what kind of fault an access to va is, returning the
// covering mapping for soft/hard/COW faults.
func (as *AddrSpace) Classify(va uint32, acc cpu.Access) (FaultClass, *Mapping) {
	m := as.MappingAt(va)
	if m == nil || m.Perm&needs(acc) == 0 {
		return FaultFatal, nil
	}
	off := m.regionOffFor(va)
	if f := m.Region.FrameAt(off); f != nil {
		// A store to a copy-on-write frame: the mapping grants write but
		// cached translations were write-protected when the frame was
		// shared, so the access trapped here for the share to be broken.
		if acc == cpu.Write && f.Cow {
			return FaultCOW, m
		}
		return FaultSoft, m
	}
	if m.Region.DemandZero {
		return FaultSoft, m
	}
	if m.Region.Pager != nil {
		return FaultHard, m
	}
	return FaultFatal, nil
}

// ResolveSoft installs the PTE for a soft fault at va, materializing a
// demand-zero frame in the region if needed. Classify must have returned
// FaultSoft for the same access.
func (as *AddrSpace) ResolveSoft(va uint32, acc cpu.Access) error {
	m := as.MappingAt(va)
	if m == nil {
		return fmt.Errorf("mmu: ResolveSoft(%#x): no mapping", va)
	}
	off := mem.PageTrunc(m.regionOffFor(va))
	f := m.Region.FrameAt(off)
	if f == nil {
		if !m.Region.DemandZero {
			return fmt.Errorf("mmu: ResolveSoft(%#x): page absent and not demand-zero", va)
		}
		var err error
		f, err = as.alloc.Alloc()
		if err != nil {
			return err
		}
		m.Region.Populate(off, f)
	}
	perm := m.Perm
	if f.Cow {
		// Copy-on-write frames never get cached write permission: the
		// next store must trap so the share can be broken (ResolveCOW).
		perm &^= PermWrite
	}
	vpn := mem.VPN(va)
	as.flushSlot(vpn) // pt[vpn] changes below; keep TLB ⊆ pt
	// A PTE born while the region is tracking is born armed, so a store
	// through it logs the page like any pre-arming translation would.
	as.pt[vpn] = pte{frame: f, perm: perm, track: m.Region.trackDirty}
	return nil
}

// ResolveCOW resolves a copy-on-write fault for a store to va. If the
// backing frame is still shared, the share is broken: the page is copied
// into a fresh frame, the region slot is repointed (flushing every derived
// translation through the watcher list), and this holder's reference to
// the shared frame is dropped. If the sharing has already dissolved (this
// region holds the last reference), write permission is simply restored.
// Either way a writable PTE is installed so the restarted store hits.
// Classify must have returned FaultCOW for the same access; copied reports
// whether a page copy happened (the caller charges for it).
func (as *AddrSpace) ResolveCOW(va uint32) (copied bool, err error) {
	m := as.MappingAt(va)
	if m == nil {
		return false, fmt.Errorf("mmu: ResolveCOW(%#x): no mapping", va)
	}
	off := mem.PageTrunc(m.regionOffFor(va))
	f := m.Region.FrameAt(off)
	if f == nil || !f.Cow {
		return false, fmt.Errorf("mmu: ResolveCOW(%#x): page is not copy-on-write", va)
	}
	cur := f
	if f.Shared() {
		nf, aerr := as.alloc.Alloc()
		if aerr != nil {
			return false, aerr
		}
		copy(nf.Data, f.Data)
		nf.Bump()
		m.Region.Populate(off, nf) // flushes derived translations everywhere
		as.alloc.Free(f)           // drop this region's reference
		cur = nf
		copied = true
	} else {
		// Last reference: no copy needed. Clear the marker; other
		// write-protected translations of this frame (other mappings or
		// spaces) upgrade lazily through ordinary soft faults. The frame
		// keeps its identity but its sharing structure changed, so the
		// tracker must recapture the page (a delta restored from a parent
		// image would otherwise resurrect the stale Cow marker).
		f.Cow = false
		m.Region.MarkDirty(off)
	}
	vpn := mem.VPN(va)
	as.flushSlot(vpn) // pt[vpn] changes below; keep TLB ⊆ pt
	as.pt[vpn] = pte{frame: cur, perm: m.Perm}
	return copied, nil
}

// ShareCOW implements the zero-copy IPC transfer step: the frame backing
// the page at srcVA in src is installed copy-on-write into the region slot
// backing dstVA in dst, instead of copying the page's words. Every cached
// translation of the source page is write-protected (read and exec hits
// stay intact) and the destination page's translation is re-derived
// read-only, so the next store through either side raises FaultCOW and
// breaks the share.
//
// Both addresses must be page-aligned, covered by a readable source /
// writable destination mapping, neither page a device register window,
// and the source page must be present. The window check is per page, not
// per space: a driver space that has registers mapped elsewhere — the
// network server replying straight out of its NIC DMA region — shares
// its ordinary pages fine. ShareCOW reports false without changing
// anything when a precondition fails — the caller falls back to the
// copying path, which raises exactly the faults the copy would. Sharing
// a page with itself, or re-sending a page that is already shared into
// the same slot, succeeds as a no-op.
func ShareCOW(src *AddrSpace, srcVA uint32, dst *AddrSpace, dstVA uint32) bool {
	if srcVA%mem.PageSize != 0 || dstVA%mem.PageSize != 0 {
		return false
	}
	if src.ioAt(srcVA) != nil || dst.ioAt(dstVA) != nil {
		return false
	}
	sm := src.MappingAt(srcVA)
	dm := dst.MappingAt(dstVA)
	if sm == nil || dm == nil || sm.Perm&PermRead == 0 || dm.Perm&PermWrite == 0 {
		return false
	}
	soff := sm.regionOffFor(srcVA) // page-aligned: mapping bases/offsets are
	doff := dm.regionOffFor(dstVA)
	f := sm.Region.FrameAt(soff)
	if f == nil {
		return false
	}
	if sm.Region == dm.Region && soff == doff {
		return true // sending a page to itself: already identical
	}
	if dm.Region.FrameAt(doff) == f {
		return true // re-send into the same slot: share already in place
	}
	src.alloc.Share(f)
	f.Cow = true
	if old := dm.Region.Populate(doff, f); old != nil {
		src.alloc.Free(old)
	}
	// Existing translations of the source page may still grant write
	// straight into the now-shared frame; downgrade them everywhere.
	sm.Region.writeProtect(soff)
	// The source page's bytes are unchanged but its frame is now Cow with
	// an extra reference — sharing structure a parent image cannot know.
	// (The destination page was marked by Populate above.)
	sm.Region.MarkDirty(soff)
	// Populate dropped the destination page's translations; re-derive the
	// receiver's own (read-only — the frame is Cow) so the receive buffer
	// stays as mapped as the copying path would have left it.
	dvpn := mem.VPN(dstVA)
	dst.flushSlot(dvpn)
	dst.pt[dvpn] = pte{frame: f, perm: dm.Perm &^ PermWrite}
	return true
}

// writeProtect masks write permission out of every cached translation of
// the region page at off in every importing space, leaving read and exec
// hits intact: the next store through any of them faults, and the COW
// logic decides whether to break a share or restore the bit.
func (r *Region) writeProtect(off uint32) {
	for _, as := range r.watchers {
		for _, m := range as.mappings {
			if m.Region == r && off >= m.RegionOff && off-m.RegionOff < m.Size {
				as.writeProtectPage(m.Base + (off - m.RegionOff))
			}
		}
	}
}

// armTrackRange sets the track bit on every installed PTE covering
// [base, base+size) and masks write permission out of the matching TLB
// slots (the PTEs keep theirs — see the pte type). Like FlushRange, it
// iterates whichever of {range pages, installed PTEs} is smaller.
func (as *AddrSpace) armTrackRange(base, size uint32) {
	if size == 0 {
		return
	}
	first := mem.VPN(base)
	last := mem.VPN(base + size - 1)
	arm := func(vpn uint32) {
		if e, ok := as.pt[vpn]; ok && !e.track {
			e.track = true
			as.pt[vpn] = e
			if t := &as.tlb[vpn&as.tlbMask]; t.perm&PermWrite != 0 && t.vpn == vpn {
				t.perm &^= PermWrite
			}
		}
	}
	if uint64(last-first)+1 > uint64(len(as.pt)) {
		for vpn := range as.pt {
			if vpn >= first && vpn <= last {
				arm(vpn)
			}
		}
		return
	}
	for vpn := first; ; vpn++ {
		arm(vpn)
		if vpn == last { // guard wrap-around
			return
		}
	}
}

// writeProtectPage masks write permission out of the cached PTE and TLB
// slot for the page containing va, if installed.
func (as *AddrSpace) writeProtectPage(va uint32) {
	vpn := mem.VPN(va)
	if e, ok := as.pt[vpn]; ok && e.perm&PermWrite != 0 {
		e.perm &^= PermWrite
		as.pt[vpn] = e
	}
	if e := &as.tlb[vpn&as.tlbMask]; e.perm&PermWrite != 0 && e.vpn == vpn {
		e.perm &^= PermWrite
	}
}

// HasPTE reports whether any PTE is installed for the page containing va
// (regardless of permissions).
func (as *AddrSpace) HasPTE(va uint32) bool {
	_, ok := as.pt[mem.VPN(va)]
	return ok
}

// HasMMIO reports whether any device-register windows are installed.
func (as *AddrSpace) HasMMIO() bool { return len(as.io) > 0 }

// translate returns the frame and in-page offset for va, or a fault. A
// successful translation refills the TLB slot for the page (unless fast
// paths are disabled), exactly as a hardware page-table walk would.
func (as *AddrSpace) translate(va uint32, acc cpu.Access) (*mem.Frame, uint32, *cpu.Fault) {
	vpn := mem.VPN(va)
	e, ok := as.pt[vpn]
	if !ok || e.perm&needs(acc) == 0 {
		as.Faults++
		return nil, 0, &cpu.Fault{VA: va, Access: acc}
	}
	if e.track && acc == cpu.Write {
		// First store since dirty tracking was armed: log the page and
		// disarm, then complete the access. No fault, no Faults count, no
		// cycles — tracking is invisible to virtual time.
		e.track = false
		as.pt[vpn] = e
		if m := as.MappingAt(va); m != nil {
			m.Region.MarkDirty(m.regionOffFor(va))
		}
	}
	if !as.noFast {
		perm := e.perm
		if e.track {
			// Refill without write permission while armed, so a later
			// store cannot hit the TLB and bypass the dirty log.
			perm &^= PermWrite
		}
		as.tlb[vpn&as.tlbMask] = tlbEntry{vpn: vpn, perm: perm, frame: e.frame}
	}
	return e.frame, va & mem.PageMask, nil
}

// probe is a non-faulting, non-filling translate: it checks the TLB then
// the pt map without counting Faults or changing any cache state. The fast
// paths use it so their translation probes are invisible to diagnostics.
func (as *AddrSpace) probe(va uint32, acc cpu.Access) *mem.Frame {
	vpn := mem.VPN(va)
	if e := &as.tlb[vpn&as.tlbMask]; e.vpn == vpn && e.perm&needs(acc) != 0 {
		return e.frame
	}
	if e, ok := as.pt[vpn]; ok && e.perm&needs(acc) != 0 && !(e.track && acc == cpu.Write) {
		// An armed entry must not satisfy a write probe: DirectWindow
		// would bypass the dirty log. The per-word fallback resolves the
		// track bit through translate instead.
		return e.frame
	}
	return nil
}

// Load32 implements cpu.Memory.
func (as *AddrSpace) Load32(va uint32) (uint32, *cpu.Fault) {
	if len(as.io) > 0 {
		if v, hit, flt := as.ioLoad32(va); hit {
			return v, flt
		}
	}
	if va%4 != 0 {
		as.Faults++
		return 0, &cpu.Fault{VA: va, Access: cpu.Read}
	}
	vpn := mem.VPN(va)
	if e := &as.tlb[vpn&as.tlbMask]; e.vpn == vpn && e.perm&PermRead != 0 {
		d := e.frame.Data[va&mem.PageMask:]
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
	}
	f, off, flt := as.translate(va, cpu.Read)
	if flt != nil {
		return 0, flt
	}
	d := f.Data[off:]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

// Store32 implements cpu.Memory.
func (as *AddrSpace) Store32(va uint32, v uint32) *cpu.Fault {
	if len(as.io) > 0 {
		if hit, flt := as.ioStore32(va, v); hit {
			return flt
		}
	}
	if va%4 != 0 {
		as.Faults++
		return &cpu.Fault{VA: va, Access: cpu.Write}
	}
	vpn := mem.VPN(va)
	if e := &as.tlb[vpn&as.tlbMask]; e.vpn == vpn && e.perm&PermWrite != 0 {
		e.frame.Gen++
		d := e.frame.Data[va&mem.PageMask:]
		d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return nil
	}
	f, off, flt := as.translate(va, cpu.Write)
	if flt != nil {
		return flt
	}
	f.Gen++
	d := f.Data[off:]
	d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

// Load8 implements cpu.Memory.
func (as *AddrSpace) Load8(va uint32) (byte, *cpu.Fault) {
	vpn := mem.VPN(va)
	if e := &as.tlb[vpn&as.tlbMask]; e.vpn == vpn && e.perm&PermRead != 0 {
		return e.frame.Data[va&mem.PageMask], nil
	}
	f, off, flt := as.translate(va, cpu.Read)
	if flt != nil {
		return 0, flt
	}
	return f.Data[off], nil
}

// Store8 implements cpu.Memory.
func (as *AddrSpace) Store8(va uint32, v byte) *cpu.Fault {
	vpn := mem.VPN(va)
	if e := &as.tlb[vpn&as.tlbMask]; e.vpn == vpn && e.perm&PermWrite != 0 {
		e.frame.Gen++
		e.frame.Data[va&mem.PageMask] = v
		return nil
	}
	f, off, flt := as.translate(va, cpu.Write)
	if flt != nil {
		return flt
	}
	f.Gen++
	f.Data[off] = v
	return nil
}

// Fetch32 implements cpu.Memory (instruction fetch).
func (as *AddrSpace) Fetch32(va uint32) (uint32, *cpu.Fault) {
	if va%4 != 0 {
		as.Faults++
		return 0, &cpu.Fault{VA: va, Access: cpu.Exec}
	}
	vpn := mem.VPN(va)
	if e := &as.tlb[vpn&as.tlbMask]; e.vpn == vpn && e.perm&PermExec != 0 {
		d := e.frame.Data[va&mem.PageMask:]
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
	}
	f, off, flt := as.translate(va, cpu.Exec)
	if flt != nil {
		return 0, flt
	}
	d := f.Data[off:]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

// DecodedPageFor returns the decoded-instruction cache page for the page
// containing pc, or nil when the fast path cannot be used (caches
// disabled, MMIO windows present, or no executable translation installed
// yet). It is a pure probe: it never counts Faults and never installs
// translations, so it is invisible to diagnostics and virtual time.
func (as *AddrSpace) DecodedPageFor(pc uint32) *cpu.DecodedPage {
	if as.noFast || len(as.io) > 0 {
		return nil
	}
	f := as.probe(pc, cpu.Exec)
	if f == nil {
		return nil
	}
	vpn := mem.VPN(pc)
	e := &as.icache[vpn%icSize]
	if e.page == nil || e.vpn != vpn || e.frame != f || e.page.Stale() {
		if e.page == nil {
			e.page = new(cpu.DecodedPage)
		} else {
			built := e.page.BuiltBlocks()
			as.exec.BlockInvalidations += uint64(built)
			if e.vpn == vpn && e.frame == f {
				as.exec.StaleResets++ // same page, dirtied by a store
				if built > 0 && e.thrash < blockThrashLimit {
					e.thrash++
				}
			} else {
				e.thrash = 0
			}
		}
		as.exec.PagesDecoded++
		e.vpn, e.frame = vpn, f
		e.page.Reset(&f.Gen)
		e.page.NoBlocks = as.noBlocks || e.thrash >= blockThrashLimit
	}
	return e.page
}

// DirectWindow returns a byte slice aliasing guest memory at va, usable
// for up to max bytes but never past the end of va's page, or nil when the
// access must take the slow path (fast paths disabled, MMIO windows
// present, no translation granting acc, or max == 0). A write window bumps
// the frame's store generation so decoded-instruction caches stay
// coherent. Callers must re-request the window after anything that can
// change translations (faults, scheduling).
func (as *AddrSpace) DirectWindow(va uint32, acc cpu.Access, max uint32) []byte {
	if as.noFast || len(as.io) > 0 || max == 0 {
		return nil
	}
	f := as.probe(va, acc)
	if f == nil {
		return nil
	}
	off := va & mem.PageMask
	n := uint32(mem.PageSize) - off
	if n > max {
		n = max
	}
	if acc == cpu.Write {
		f.Bump()
	}
	return f.Data[off : off+n]
}

var _ cpu.Memory = (*AddrSpace)(nil)
var _ cpu.DecodedSource = (*AddrSpace)(nil)
