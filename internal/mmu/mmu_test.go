package mmu

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/mem"
)

func newAS(t *testing.T) *AddrSpace {
	t.Helper()
	return NewAddrSpace(mem.NewAllocator(1024))
}

// mapZero maps a fresh demand-zero region of size at base with perm.
func mapZero(t *testing.T, as *AddrSpace, base, size uint32, p Perm) (*Region, *Mapping) {
	t.Helper()
	r := NewRegion(size, true)
	m := &Mapping{Region: r, Base: base, Size: r.Size, Perm: p}
	if err := as.Map(m); err != nil {
		t.Fatal(err)
	}
	return r, m
}

// touch resolves faults until the access succeeds, like the kernel's
// fault-and-restart loop, but only for soft faults.
func touchStore32(t *testing.T, as *AddrSpace, va, v uint32) {
	t.Helper()
	for i := 0; i < 3; i++ {
		if f := as.Store32(va, v); f == nil {
			return
		}
		cl, _ := as.Classify(va, cpu.Write)
		if cl != FaultSoft {
			t.Fatalf("store %#x: fault class %v", va, cl)
		}
		if err := as.ResolveSoft(va, cpu.Write); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("store %#x: fault loop did not converge", va)
}

func TestDemandZeroSoftFaultRestart(t *testing.T) {
	as := newAS(t)
	mapZero(t, as, 0x10000, 2*mem.PageSize, PermRW)

	if _, f := as.Load32(0x10000); f == nil {
		t.Fatal("expected fault on first touch")
	}
	cl, m := as.Classify(0x10000, cpu.Read)
	if cl != FaultSoft || m == nil {
		t.Fatalf("class=%v mapping=%v, want soft", cl, m)
	}
	if err := as.ResolveSoft(0x10000, cpu.Read); err != nil {
		t.Fatal(err)
	}
	v, f := as.Load32(0x10000)
	if f != nil || v != 0 {
		t.Fatalf("after resolve: v=%d f=%v", v, f)
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	as := newAS(t)
	mapZero(t, as, 0x20000, mem.PageSize, PermRW)
	touchStore32(t, as, 0x20004, 0xCAFEBABE)
	v, f := as.Load32(0x20004)
	if f != nil || v != 0xCAFEBABE {
		t.Fatalf("v=%#x f=%v", v, f)
	}
	// Byte view of the same word (little-endian).
	b, f := as.Load8(0x20004)
	if f != nil || b != 0xBE {
		t.Fatalf("b=%#x f=%v", b, f)
	}
}

func TestMisalignedAccessFaults(t *testing.T) {
	as := newAS(t)
	mapZero(t, as, 0, mem.PageSize, PermRWX)
	touchStore32(t, as, 0, 1)
	if _, f := as.Load32(2); f == nil {
		t.Fatal("misaligned load did not fault")
	}
	if f := as.Store32(1, 0); f == nil {
		t.Fatal("misaligned store did not fault")
	}
	if _, f := as.Fetch32(6); f == nil {
		t.Fatal("misaligned fetch did not fault")
	}
}

func TestProtection(t *testing.T) {
	as := newAS(t)
	r, m := mapZero(t, as, 0x30000, mem.PageSize, PermRead)
	// Pre-populate the page so reads are soft-resolvable.
	f, _ := as.Allocator().Alloc()
	r.Populate(0, f)
	if err := as.ResolveSoft(0x30000, cpu.Read); err != nil {
		t.Fatal(err)
	}
	if _, flt := as.Load32(0x30000); flt != nil {
		t.Fatal("read denied on readable page")
	}
	if flt := as.Store32(0x30000, 1); flt == nil {
		t.Fatal("write allowed on read-only page")
	}
	cl, _ := as.Classify(0x30000, cpu.Write)
	if cl != FaultFatal {
		t.Fatalf("write to read-only classifies as %v, want fatal", cl)
	}
	// Upgrading protection flushes PTEs; next write soft-faults then works.
	as.SetProtection(m, PermRW)
	touchStore32(t, as, 0x30000, 7)
}

func TestUnmappedIsFatal(t *testing.T) {
	as := newAS(t)
	cl, m := as.Classify(0xDEAD0000, cpu.Read)
	if cl != FaultFatal || m != nil {
		t.Fatalf("class=%v m=%v", cl, m)
	}
}

func TestHardFaultClassification(t *testing.T) {
	as := newAS(t)
	r := NewRegion(4*mem.PageSize, false)
	r.Pager = "pager-port"
	m := &Mapping{Region: r, Base: 0x40000, Size: r.Size, Perm: PermRW}
	if err := as.Map(m); err != nil {
		t.Fatal(err)
	}
	cl, _ := as.Classify(0x40000, cpu.Read)
	if cl != FaultHard {
		t.Fatalf("class=%v, want hard", cl)
	}
	// Once the pager populates the page, the same fault becomes soft.
	f, _ := as.Allocator().Alloc()
	f.Data[0] = 0x5A
	r.Populate(0, f)
	cl, _ = as.Classify(0x40000, cpu.Read)
	if cl != FaultSoft {
		t.Fatalf("after populate: class=%v, want soft", cl)
	}
	if err := as.ResolveSoft(0x40000, cpu.Read); err != nil {
		t.Fatal(err)
	}
	b, flt := as.Load8(0x40000)
	if flt != nil || b != 0x5A {
		t.Fatalf("b=%#x flt=%v", b, flt)
	}
}

func TestPagerBackedWithoutFrameNoDemandZero(t *testing.T) {
	as := newAS(t)
	r := NewRegion(mem.PageSize, false) // no pager, no demand-zero
	m := &Mapping{Region: r, Base: 0x50000, Size: r.Size, Perm: PermRW}
	if err := as.Map(m); err != nil {
		t.Fatal(err)
	}
	cl, _ := as.Classify(0x50000, cpu.Read)
	if cl != FaultFatal {
		t.Fatalf("class=%v, want fatal (no backing, no pager)", cl)
	}
}

func TestSharedRegionTwoSpaces(t *testing.T) {
	alloc := mem.NewAllocator(64)
	as1 := NewAddrSpace(alloc)
	as2 := NewAddrSpace(alloc)
	r := NewRegion(mem.PageSize, true)
	if err := as1.Map(&Mapping{Region: r, Base: 0x1000, Size: r.Size, Perm: PermRW}); err != nil {
		t.Fatal(err)
	}
	if err := as2.Map(&Mapping{Region: r, Base: 0x9000, Size: r.Size, Perm: PermRW}); err != nil {
		t.Fatal(err)
	}
	// Write via as1, read via as2: same physical page.
	if err := as1.ResolveSoft(0x1000, cpu.Write); err != nil {
		t.Fatal(err)
	}
	if f := as1.Store32(0x1000, 0x1234); f != nil {
		t.Fatal(f)
	}
	if err := as2.ResolveSoft(0x9000, cpu.Read); err != nil {
		t.Fatal(err)
	}
	v, f := as2.Load32(0x9000)
	if f != nil || v != 0x1234 {
		t.Fatalf("v=%#x f=%v", v, f)
	}
}

func TestMappingWindowOffset(t *testing.T) {
	alloc := mem.NewAllocator(64)
	as := NewAddrSpace(alloc)
	r := NewRegion(4*mem.PageSize, true)
	// Map only page 2 of the region.
	m := &Mapping{Region: r, RegionOff: 2 * mem.PageSize, Base: 0x8000, Size: mem.PageSize, Perm: PermRW}
	if err := as.Map(m); err != nil {
		t.Fatal(err)
	}
	if err := as.ResolveSoft(0x8000, cpu.Write); err != nil {
		t.Fatal(err)
	}
	as.Store32(0x8000, 99)
	if r.FrameAt(2*mem.PageSize) == nil {
		t.Fatal("page 2 of region not populated")
	}
	if r.FrameAt(0) != nil {
		t.Fatal("page 0 of region unexpectedly populated")
	}
}

func TestOverlapRejected(t *testing.T) {
	as := newAS(t)
	mapZero(t, as, 0x10000, 2*mem.PageSize, PermRW)
	r := NewRegion(mem.PageSize, true)
	err := as.Map(&Mapping{Region: r, Base: 0x11000, Size: mem.PageSize, Perm: PermRW})
	if err == nil {
		t.Fatal("overlapping map accepted")
	}
}

func TestUnalignedMapRejected(t *testing.T) {
	as := newAS(t)
	r := NewRegion(mem.PageSize, true)
	if err := as.Map(&Mapping{Region: r, Base: 0x100, Size: mem.PageSize, Perm: PermRW}); err == nil {
		t.Fatal("unaligned base accepted")
	}
	if err := as.Map(&Mapping{Region: r, Base: 0x1000, Size: 100, Perm: PermRW}); err == nil {
		t.Fatal("unaligned size accepted")
	}
}

func TestWindowOutsideRegionRejected(t *testing.T) {
	as := newAS(t)
	r := NewRegion(mem.PageSize, true)
	err := as.Map(&Mapping{Region: r, RegionOff: mem.PageSize, Base: 0x1000, Size: mem.PageSize, Perm: PermRW})
	if err == nil {
		t.Fatal("out-of-region window accepted")
	}
}

func TestUnmapFlushesPTEs(t *testing.T) {
	as := newAS(t)
	_, m := mapZero(t, as, 0x10000, mem.PageSize, PermRW)
	touchStore32(t, as, 0x10000, 5)
	if as.PTEs() != 1 {
		t.Fatalf("PTEs=%d", as.PTEs())
	}
	if !as.Unmap(m) {
		t.Fatal("Unmap returned false")
	}
	if as.PTEs() != 0 {
		t.Fatal("PTE survived unmap")
	}
	if _, f := as.Load32(0x10000); f == nil {
		t.Fatal("access after unmap succeeded")
	}
	if as.Unmap(m) {
		t.Fatal("double unmap returned true")
	}
}

func TestEvictForcesRefault(t *testing.T) {
	as := newAS(t)
	r, _ := mapZero(t, as, 0x10000, mem.PageSize, PermRW)
	touchStore32(t, as, 0x10000, 5)
	f := r.Evict(0)
	if f == nil {
		t.Fatal("evict returned nil")
	}
	as.FlushPage(0x10000)
	if _, flt := as.Load32(0x10000); flt == nil {
		t.Fatal("no fault after evict+flush")
	}
	// Demand-zero: resolving gives a fresh zero page (old data gone).
	if err := as.ResolveSoft(0x10000, cpu.Read); err != nil {
		t.Fatal(err)
	}
	v, _ := as.Load32(0x10000)
	if v != 0 {
		t.Fatalf("v=%d, want 0 (fresh zero page)", v)
	}
}

func TestFaultCounting(t *testing.T) {
	as := newAS(t)
	mapZero(t, as, 0x10000, mem.PageSize, PermRW)
	as.Load32(0x10000)
	as.Load32(0x10000)
	if as.Faults != 2 {
		t.Fatalf("Faults=%d, want 2", as.Faults)
	}
}

// Property: after ResolveSoft for a write, a store/load round-trips any
// value at any aligned offset within the mapping.
func TestPropertyRoundTripAnywhere(t *testing.T) {
	alloc := mem.NewAllocator(1024)
	as := NewAddrSpace(alloc)
	r := NewRegion(16*mem.PageSize, true)
	if err := as.Map(&Mapping{Region: r, Base: 0x100000, Size: r.Size, Perm: PermRW}); err != nil {
		t.Fatal(err)
	}
	f := func(off uint32, v uint32) bool {
		va := 0x100000 + (off%(16*mem.PageSize))&^3
		if flt := as.Store32(va, v); flt != nil {
			if err := as.ResolveSoft(va, cpu.Write); err != nil {
				return false
			}
			if flt := as.Store32(va, v); flt != nil {
				return false
			}
		}
		got, flt := as.Load32(va)
		return flt == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: classification is stable — classifying twice without state
// change gives the same answer, and resolving a soft fault makes the page
// present for that access.
func TestPropertyClassifyResolve(t *testing.T) {
	alloc := mem.NewAllocator(4096)
	as := NewAddrSpace(alloc)
	r := NewRegion(64*mem.PageSize, true)
	if err := as.Map(&Mapping{Region: r, Base: 0x200000, Size: r.Size, Perm: PermRW}); err != nil {
		t.Fatal(err)
	}
	f := func(page uint8) bool {
		va := 0x200000 + uint32(page%64)*mem.PageSize
		c1, _ := as.Classify(va, cpu.Read)
		c2, _ := as.Classify(va, cpu.Read)
		if c1 != c2 || c1 != FaultSoft {
			return false
		}
		if err := as.ResolveSoft(va, cpu.Read); err != nil {
			return false
		}
		return as.Present(va, cpu.Read)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
