package mmu

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// regDev is a trivial register file for MMIO tests.
type regDev struct {
	regs map[uint32]uint32
}

func (d *regDev) IORead32(off uint32) uint32 { return d.regs[off] }
func (d *regDev) IOWrite32(off uint32, v uint32) {
	if d.regs == nil {
		d.regs = map[uint32]uint32{}
	}
	d.regs[off] = v
}

func TestMapIOValidation(t *testing.T) {
	as := NewAddrSpace(mem.NewAllocator(16))
	d := &regDev{}
	if err := as.MapIO(0x1000, 0, d); err == nil {
		t.Fatal("zero-size window accepted")
	}
	if err := as.MapIO(0x1004, mem.PageSize, d); err == nil {
		t.Fatal("unaligned base accepted")
	}
	if err := as.MapIO(0x1000, mem.PageSize, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if err := as.MapIO(0x1000, mem.PageSize, d); err != nil {
		t.Fatal(err)
	}
	if as.IOWindows() != 1 {
		t.Fatal("window count")
	}
	// Overlap with another window.
	if err := as.MapIO(0x1000, mem.PageSize, d); err == nil {
		t.Fatal("overlapping window accepted")
	}
	// Overlap with a mapping.
	r := NewRegion(mem.PageSize, true)
	if err := as.Map(&Mapping{Region: r, Base: 0x8000, Size: mem.PageSize, Perm: PermRW}); err != nil {
		t.Fatal(err)
	}
	if err := as.MapIO(0x8000, mem.PageSize, d); err == nil {
		t.Fatal("window over mapping accepted")
	}
}

func TestIOAccessSemantics(t *testing.T) {
	as := NewAddrSpace(mem.NewAllocator(16))
	d := &regDev{}
	if err := as.MapIO(0x2000, mem.PageSize, d); err != nil {
		t.Fatal(err)
	}
	if f := as.Store32(0x2008, 0xBEEF); f != nil {
		t.Fatal(f)
	}
	if v, f := as.Load32(0x2008); f != nil || v != 0xBEEF {
		t.Fatalf("v=%#x f=%v", v, f)
	}
	// Misaligned word access to a window faults.
	if _, f := as.Load32(0x2002); f == nil {
		t.Fatal("misaligned IO load accepted")
	}
	if f := as.Store32(0x2001, 1); f == nil {
		t.Fatal("misaligned IO store accepted")
	}
	// Outside the window: normal translation (fault: unmapped).
	if _, f := as.Load32(0x9000); f == nil {
		t.Fatal("unmapped load succeeded")
	}
}

func TestRegionIntrospection(t *testing.T) {
	r := NewRegion(3*mem.PageSize, true)
	if r.Pages() != 3 {
		t.Fatalf("Pages=%d", r.Pages())
	}
	if r.PresentPages() != 0 {
		t.Fatal("fresh region has present pages")
	}
	if r.FrameAt(10*mem.PageSize) != nil {
		t.Fatal("FrameAt beyond region returned frame")
	}
	a := mem.NewAllocator(8)
	f, _ := a.Alloc()
	r.Populate(mem.PageSize, f)
	if r.PresentPages() != 1 {
		t.Fatal("PresentPages after populate")
	}
	if r.Evict(10*mem.PageSize) != nil {
		t.Fatal("Evict beyond region returned frame")
	}
}

func TestPopulateBeyondRegionPanics(t *testing.T) {
	r := NewRegion(mem.PageSize, true)
	a := mem.NewAllocator(2)
	f, _ := a.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.Populate(4*mem.PageSize, f)
}

func TestStringers(t *testing.T) {
	if PermRW.String() != "rw-" || PermRWX.String() != "rwx" || Perm(0).String() != "---" {
		t.Fatalf("perm strings: %s %s", PermRW, PermRWX)
	}
	for _, c := range []FaultClass{FaultFatal, FaultSoft, FaultHard} {
		if c.String() == "fault?" {
			t.Fatalf("unnamed class %d", c)
		}
	}
}

func TestByteAccessAndFetch(t *testing.T) {
	as := NewAddrSpace(mem.NewAllocator(16))
	r := NewRegion(mem.PageSize, true)
	if err := as.Map(&Mapping{Region: r, Base: 0x4000, Size: mem.PageSize, Perm: PermRWX}); err != nil {
		t.Fatal(err)
	}
	if err := as.ResolveSoft(0x4000, cpu.Write); err != nil {
		t.Fatal(err)
	}
	if f := as.Store8(0x4005, 0x7E); f != nil {
		t.Fatal(f)
	}
	if b, f := as.Load8(0x4005); f != nil || b != 0x7E {
		t.Fatalf("b=%#x f=%v", b, f)
	}
	// Store a word and fetch it as an instruction.
	as.Store32(0x4010, 0x01020304)
	if v, f := as.Fetch32(0x4010); f != nil || v != 0x01020304 {
		t.Fatalf("fetch v=%#x f=%v", v, f)
	}
	if _, f := as.Fetch32(0x4012); f == nil {
		t.Fatal("misaligned fetch accepted")
	}
	// Store8 to unmapped address faults.
	if f := as.Store8(0xF0000, 1); f == nil {
		t.Fatal("store8 to unmapped accepted")
	}
	if len(as.Mappings()) != 1 {
		t.Fatal("Mappings()")
	}
}
