package mmu

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// cowEnv wires two address spaces over separate regions sharing one
// allocator, with a page already written in the source, mimicking the
// zero-copy IPC setup (sender buffer populated, receiver buffer mapped).
func cowEnv(t *testing.T) (alloc *mem.Allocator, src, dst *AddrSpace, srcReg, dstReg *Region) {
	t.Helper()
	alloc = mem.NewAllocator(64)
	src = NewAddrSpace(alloc)
	dst = NewAddrSpace(alloc)
	srcReg, _ = mapZero(t, src, 0x10000, 2*mem.PageSize, PermRW)
	dstReg, _ = mapZero(t, dst, 0x40000, 2*mem.PageSize, PermRW)
	touchStore32(t, src, 0x10000, 0xfeed)
	touchStore32(t, dst, 0x40000, 0) // receiver page present, like a reused buffer
	return
}

// resolveTo drives the fault-and-restart loop for a store, resolving soft
// and COW faults, and returns how many COW breaks copied a page.
func resolveStore(t *testing.T, as *AddrSpace, va, v uint32) (copies int) {
	t.Helper()
	for i := 0; i < 4; i++ {
		if f := as.Store32(va, v); f == nil {
			return copies
		}
		switch cl, _ := as.Classify(va, cpu.Write); cl {
		case FaultSoft:
			if err := as.ResolveSoft(va, cpu.Write); err != nil {
				t.Fatal(err)
			}
		case FaultCOW:
			copied, err := as.ResolveCOW(va)
			if err != nil {
				t.Fatal(err)
			}
			if copied {
				copies++
			}
		default:
			t.Fatalf("store %#x: unexpected fault class", va)
		}
	}
	t.Fatalf("store %#x: fault loop did not converge", va)
	return
}

// ShareCOW installs the sender's frame in the receiver's region: one frame,
// two references, reads hit on both sides, and no words were copied.
func TestShareCOWAliasesFrame(t *testing.T) {
	alloc, src, dst, srcReg, dstReg := cowEnv(t)
	inUse := alloc.InUse()
	if !ShareCOW(src, 0x10000, dst, 0x40000) {
		t.Fatal("ShareCOW refused an eligible transfer")
	}
	f := srcReg.FrameAt(0)
	if dstReg.FrameAt(0) != f {
		t.Fatal("receiver region does not alias the sender's frame")
	}
	if f.Refs != 2 || !f.Cow {
		t.Fatalf("shared frame Refs=%d Cow=%v, want 2 true", f.Refs, f.Cow)
	}
	// The receiver's old frame was released.
	if alloc.InUse() != inUse-1 {
		t.Fatalf("InUse=%d, want %d (old receiver frame freed)", alloc.InUse(), inUse-1)
	}
	// Reads hit on both sides without faulting.
	if v, flt := dst.Load32(0x40000); flt != nil || v != 0xfeed {
		t.Fatalf("receiver read = %#x, fault=%v; want 0xfeed, nil", v, flt)
	}
	if v, flt := src.Load32(0x10000); flt != nil || v != 0xfeed {
		t.Fatalf("sender read = %#x, fault=%v; want 0xfeed, nil", v, flt)
	}
	// Re-sending the same page is a no-op that stays shared.
	if !ShareCOW(src, 0x10000, dst, 0x40000) {
		t.Fatal("re-send of an already-shared page refused")
	}
	if f.Refs != 2 {
		t.Fatalf("re-send changed Refs to %d", f.Refs)
	}
}

// A store through either side of a share raises FaultCOW, and resolving it
// copies the page exactly once: the writer gets a private frame, the other
// side keeps the original bits.
func TestCOWBreakOnStore(t *testing.T) {
	for _, writer := range []string{"receiver", "sender"} {
		t.Run(writer, func(t *testing.T) {
			alloc, src, dst, srcReg, dstReg := cowEnv(t)
			if !ShareCOW(src, 0x10000, dst, 0x40000) {
				t.Fatal("ShareCOW refused")
			}
			was := alloc.InUse()
			wAS, wVA, oAS, oVA := dst, uint32(0x40000), src, uint32(0x10000)
			if writer == "sender" {
				wAS, wVA, oAS, oVA = src, 0x10000, dst, 0x40000
			}
			if flt := wAS.Store32(wVA, 0xdead); flt == nil {
				t.Fatal("store to shared page did not fault")
			}
			if cl, _ := wAS.Classify(wVA, cpu.Write); cl != FaultCOW {
				t.Fatalf("fault class %v, want FaultCOW", cl)
			}
			if n := resolveStore(t, wAS, wVA, 0xdead); n != 1 {
				t.Fatalf("%d page copies breaking the share, want 1", n)
			}
			if alloc.InUse() != was+1 {
				t.Fatalf("InUse=%d, want %d (one private copy)", alloc.InUse(), was+1)
			}
			if srcReg.FrameAt(0) == dstReg.FrameAt(0) {
				t.Fatal("share not broken: regions still alias one frame")
			}
			if v, _ := wAS.Load32(wVA); v != 0xdead {
				t.Fatalf("writer sees %#x, want its own store", v)
			}
			if v, flt := oAS.Load32(oVA); flt != nil || v != 0xfeed {
				t.Fatalf("other side sees %#x (fault=%v), want original 0xfeed", v, flt)
			}
			// The survivor's write permission is restored lazily without
			// another copy: refcount is back to 1.
			if n := resolveStore(t, oAS, oVA, 0xbeef); n != 0 {
				t.Fatalf("%d copies upgrading the last holder, want 0", n)
			}
			if v, _ := wAS.Load32(wVA); v != 0xdead {
				t.Fatalf("writer's page changed to %#x after the other side wrote", v)
			}
		})
	}
}

// Ineligible transfers are refused untouched: misalignment, missing source
// frame, protection, and self-send.
func TestShareCOWPreconditions(t *testing.T) {
	_, src, dst, srcReg, _ := cowEnv(t)
	if ShareCOW(src, 0x10004, dst, 0x40000) || ShareCOW(src, 0x10000, dst, 0x40004) {
		t.Fatal("unaligned share accepted")
	}
	// Source page 1 has no frame yet.
	if ShareCOW(src, 0x10000+mem.PageSize, dst, 0x40000) {
		t.Fatal("share of an absent source page accepted")
	}
	// Read-only destination.
	ro := NewAddrSpace(src.Allocator())
	mapZero(t, ro, 0x70000, mem.PageSize, PermRead)
	if ShareCOW(src, 0x10000, ro, 0x70000) {
		t.Fatal("share into a read-only mapping accepted")
	}
	// A page sent to itself succeeds as a no-op and stays unshared.
	if !ShareCOW(src, 0x10000, src, 0x10000) {
		t.Fatal("self-send should be an accepting no-op")
	}
	if f := srcReg.FrameAt(0); f.Refs != 1 || f.Cow {
		t.Fatalf("self-send changed frame state: Refs=%d Cow=%v", f.Refs, f.Cow)
	}
}

// ResolveSoft never grants cached write permission on a Cow frame, so a
// receiver that re-faults its translation (e.g. after a TLB/PTE flush)
// still traps on the next store.
func TestResolveSoftMasksWriteOnCOW(t *testing.T) {
	_, src, dst, _, _ := cowEnv(t)
	if !ShareCOW(src, 0x10000, dst, 0x40000) {
		t.Fatal("ShareCOW refused")
	}
	dst.FlushPage(0x40000)
	if err := dst.ResolveSoft(0x40000, cpu.Read); err != nil {
		t.Fatal(err)
	}
	if flt := dst.Store32(0x40000, 1); flt == nil {
		t.Fatal("store through a re-derived translation of a shared frame did not fault")
	}
	if cl, _ := dst.Classify(0x40000, cpu.Write); cl != FaultCOW {
		t.Fatal("re-derived translation lost the COW trap")
	}
}

// A tiny TLB still translates correctly: conflicting pages evict each
// other (capacity misses refill from the page table), invalidation through
// the watcher path reaches the slot actually holding the page, and the TLB
// remains a strict subset of the page table throughout.
func TestTinyTLBEvictionAndInvalidation(t *testing.T) {
	alloc := mem.NewAllocator(256)
	as := NewAddrSpaceTLB(alloc, 2)
	if as.TLBSize() != 2 {
		t.Fatalf("TLBSize=%d, want 2", as.TLBSize())
	}
	reg, _ := mapZero(t, as, 0x10000, 16*mem.PageSize, PermRW)

	// Touch every page, then re-read them all: with 2 slots and 16 pages,
	// each read round-trips through eviction and page-table refill.
	for i := uint32(0); i < 16; i++ {
		touchStore32(t, as, 0x10000+i*mem.PageSize, 0x100+i)
	}
	for i := uint32(0); i < 16; i++ {
		if v, flt := as.Load32(0x10000 + i*mem.PageSize); flt != nil || v != 0x100+i {
			t.Fatalf("page %d read %#x (fault=%v), want %#x", i, v, flt, 0x100+i)
		}
	}
	checkSubset := func() {
		t.Helper()
		for _, e := range as.tlb {
			if e.perm == 0 {
				continue
			}
			pe, ok := as.pt[e.vpn]
			if !ok || pe.frame != e.frame || e.perm&^pe.perm != 0 {
				t.Fatalf("TLB entry vpn=%#x not backed by the page table", e.vpn)
			}
		}
	}
	checkSubset()

	// Invalidate a page through the region watcher path (Evict) while its
	// translation is cached: the stale slot must not survive.
	victim := uint32(0x10000 + 5*mem.PageSize)
	if v, _ := as.Load32(victim); v != 0x105 { // ensure it's TLB-resident
		t.Fatalf("victim read %#x", v)
	}
	if f := reg.Evict(5 * mem.PageSize); f != nil {
		alloc.Free(f)
	}
	if _, flt := as.Load32(victim); flt == nil {
		t.Fatal("read through an evicted page's stale translation succeeded")
	}
	checkSubset()

	// NewAddrSpaceTLB rounds odd capacities up to a power of two.
	if got := NewAddrSpaceTLB(alloc, 3).TLBSize(); got != 4 {
		t.Fatalf("TLBSize(3 requested)=%d, want 4", got)
	}
	if got := NewAddrSpaceTLB(alloc, 0).TLBSize(); got != DefaultTLBSize {
		t.Fatalf("TLBSize(0 requested)=%d, want default", got)
	}
}
