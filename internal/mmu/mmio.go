package mmu

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// IOHandler receives programmed-I/O accesses to a device register window.
// Offsets are window-relative and word-aligned. Device registers are
// always "present" — they never page-fault — but are not fetchable.
type IOHandler interface {
	IORead32(off uint32) uint32
	IOWrite32(off uint32, v uint32)
}

type ioWindow struct {
	base, size uint32
	h          IOHandler
}

// MapIO installs a device register window at [base, base+size). The
// window must be page-aligned and may not overlap mappings or other
// windows. Byte and instruction-fetch accesses to it fault (devices are
// word-addressed, as on most memory-mapped buses).
func (as *AddrSpace) MapIO(base, size uint32, h IOHandler) error {
	if base%mem.PageSize != 0 || size%mem.PageSize != 0 || size == 0 {
		return fmt.Errorf("mmu: unaligned IO window base=%#x size=%#x", base, size)
	}
	if h == nil {
		return fmt.Errorf("mmu: nil IO handler")
	}
	for _, w := range as.io {
		if base < w.base+w.size && w.base < base+size {
			return fmt.Errorf("mmu: IO window overlaps [%#x,+%#x)", w.base, w.size)
		}
	}
	for _, m := range as.mappings {
		if base < m.Base+m.Size && m.Base < base+size {
			return fmt.Errorf("mmu: IO window overlaps mapping [%#x,+%#x)", m.Base, m.Size)
		}
	}
	as.io = append(as.io, ioWindow{base: base, size: size, h: h})
	return nil
}

// ioAt returns the window covering va, if any.
func (as *AddrSpace) ioAt(va uint32) *ioWindow {
	for i := range as.io {
		w := &as.io[i]
		if va >= w.base && va-w.base < w.size {
			return w
		}
	}
	return nil
}

// IOWindows returns the number of installed device windows.
func (as *AddrSpace) IOWindows() int { return len(as.io) }

// MMIOAt reports whether va falls inside a device register window. The
// zero-copy IPC path uses it to demote exactly the pages that really are
// device registers (stores there must reach the IOHandler word by word)
// instead of refusing every transfer touching a space that has any
// window mapped — a driver space's DMA buffers are ordinary memory and
// share fine.
func (as *AddrSpace) MMIOAt(va uint32) bool { return as.ioAt(va) != nil }

// ioLoad32 handles a load that may hit a device window; hit reports
// whether it did.
func (as *AddrSpace) ioLoad32(va uint32) (v uint32, hit bool, flt *cpu.Fault) {
	w := as.ioAt(va)
	if w == nil {
		return 0, false, nil
	}
	if va%4 != 0 {
		as.Faults++
		return 0, true, &cpu.Fault{VA: va, Access: cpu.Read}
	}
	return w.h.IORead32(va - w.base), true, nil
}

// ioStore32 handles a store that may hit a device window.
func (as *AddrSpace) ioStore32(va uint32, v uint32) (hit bool, flt *cpu.Fault) {
	w := as.ioAt(va)
	if w == nil {
		return false, nil
	}
	if va%4 != 0 {
		as.Faults++
		return true, &cpu.Fault{VA: va, Access: cpu.Write}
	}
	w.h.IOWrite32(va-w.base, v)
	return true, nil
}
