package mmu

import (
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// Dirty-page tracking (incremental checkpointing): the track-bit
// mechanism must log exactly the pages whose content or backing-frame
// identity changed, while remaining invisible to everything the
// simulation can observe — no faults raised, no Faults counted, no
// change to what any access returns.

func TestDirtyTrackingLogsFirstStore(t *testing.T) {
	as := newAS(t)
	r, _ := mapZero(t, as, 0x10000, 8*mem.PageSize, PermRW)

	// Materialize every page before arming, so the baseline is "present".
	for i := uint32(0); i < 8; i++ {
		touchStore32(t, as, 0x10000+i*mem.PageSize, i)
	}
	r.StartDirtyTracking()
	if r.DirtyCount() != 0 {
		t.Fatalf("fresh tracker has %d dirty pages", r.DirtyCount())
	}

	// A read does not mark; the first store marks once; repeat stores
	// through the rewarmed TLB do not grow the set.
	if _, f := as.Load32(0x10000); f != nil {
		t.Fatalf("tracked read faulted: %v", f)
	}
	if r.DirtyCount() != 0 {
		t.Fatal("read marked a page dirty")
	}
	faultsBefore := as.Faults
	for i := 0; i < 4; i++ {
		if f := as.Store32(0x10000+2*mem.PageSize+uint32(i)*4, 7); f != nil {
			t.Fatalf("tracked store faulted: %v", f)
		}
	}
	if as.Faults != faultsBefore {
		t.Fatalf("tracked store counted %d faults", as.Faults-faultsBefore)
	}
	if !r.IsDirty(2*mem.PageSize) || r.DirtyCount() != 1 {
		t.Fatalf("dirty set after one page of stores: count=%d", r.DirtyCount())
	}

	// Re-arming clears the set and re-catches the same page.
	r.StartDirtyTracking()
	if r.DirtyCount() != 0 {
		t.Fatal("re-arm did not clear the dirty set")
	}
	if f := as.Store8(0x10000+2*mem.PageSize, 1); f != nil {
		t.Fatalf("store after re-arm faulted: %v", f)
	}
	if !r.IsDirty(2 * mem.PageSize) {
		t.Fatal("store after re-arm not logged")
	}
}

func TestDirtyTrackingCoversDirectWindow(t *testing.T) {
	as := newAS(t)
	r, _ := mapZero(t, as, 0x20000, 2*mem.PageSize, PermRW)
	touchStore32(t, as, 0x20000, 1)
	r.StartDirtyTracking()

	// An armed page must not hand out a write window (the copy would
	// bypass the log); the per-word fallback logs, and afterwards the
	// window comes back.
	if w := as.DirectWindow(0x20000, cpu.Write, 16); w != nil {
		t.Fatal("armed page handed out a write window")
	}
	if w := as.DirectWindow(0x20000, cpu.Read, 16); w == nil {
		t.Fatal("armed page refused a read window")
	}
	if f := as.Store32(0x20000, 2); f != nil {
		t.Fatalf("fallback store faulted: %v", f)
	}
	if !r.IsDirty(0) {
		t.Fatal("fallback store not logged")
	}
	if w := as.DirectWindow(0x20000, cpu.Write, 16); w == nil {
		t.Fatal("disarmed page still refuses a write window")
	}
}

func TestDirtyTrackingMarksIdentityChanges(t *testing.T) {
	as := newAS(t)
	r, _ := mapZero(t, as, 0x30000, 8*mem.PageSize, PermRW)
	as2 := newAS(t)
	r2, _ := mapZero(t, as2, 0x50000, 8*mem.PageSize, PermRW)
	for i := uint32(0); i < 4; i++ {
		touchStore32(t, as, 0x30000+i*mem.PageSize, 0xA0+i)
		touchStore32(t, as2, 0x50000+i*mem.PageSize, 0xB0+i)
	}
	r.StartDirtyTracking()
	r2.StartDirtyTracking()

	// ShareCOW: the destination page's frame changes; the source page's
	// frame becomes Cow with an extra reference. Both must be logged.
	if !ShareCOW(as, 0x30000, as2, 0x50000+mem.PageSize) {
		t.Fatal("ShareCOW refused")
	}
	if !r.IsDirty(0) {
		t.Fatal("ShareCOW source page not logged")
	}
	if !r2.IsDirty(mem.PageSize) {
		t.Fatal("ShareCOW destination page not logged")
	}

	// ResolveCOW, last-reference branch: frame identity kept, Cow marker
	// cleared — still a sharing-structure change the tracker must see.
	old := r2.Evict(mem.PageSize) // drop the receiver's slot; source holds the last ref
	as2.Allocator().Free(old)
	r.StartDirtyTracking()
	if f := as.Store32(0x30000, 9); f == nil {
		t.Fatal("store to COW page did not fault")
	}
	if cl, _ := as.Classify(0x30000, cpu.Write); cl != FaultCOW {
		t.Fatalf("class=%v, want cow", cl)
	}
	if copied, err := as.ResolveCOW(0x30000); err != nil || copied {
		t.Fatalf("ResolveCOW copied=%v err=%v, want last-ref in-place", copied, err)
	}
	if !r.IsDirty(0) {
		t.Fatal("last-ref COW resolution not logged")
	}

	// Populate / Repoint replace a frame outright.
	r.StartDirtyTracking()
	nf, _ := as.Allocator().Alloc()
	if old := r.Populate(2*mem.PageSize, nf); old != nil {
		as.Allocator().Free(old)
	}
	if !r.IsDirty(2 * mem.PageSize) {
		t.Fatal("Populate not logged")
	}
	nf2, _ := as.Allocator().Alloc()
	if old := r.Repoint(3*mem.PageSize, nf2); old != nil {
		as.Allocator().Free(old)
	}
	if !r.IsDirty(3 * mem.PageSize) {
		t.Fatal("Repoint not logged")
	}
}

// TestDirtyTrackingInvisible runs the same access sequence against a
// tracked and an untracked space and requires identical observable
// behavior: same values, same fault sequence, same Faults count.
func TestDirtyTrackingInvisible(t *testing.T) {
	run := func(track bool) (vals []uint32, faults uint64) {
		as := newAS(t)
		r, _ := mapZero(t, as, 0x10000, 16*mem.PageSize, PermRW)
		for i := uint32(0); i < 16; i += 2 {
			touchStore32(t, as, 0x10000+i*mem.PageSize, i)
		}
		if track {
			r.StartDirtyTracking()
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 2000; i++ {
			va := 0x10000 + uint32(rng.Intn(16*int(mem.PageSize)))&^3
			if rng.Intn(2) == 0 {
				if f := as.Store32(va, uint32(i)); f != nil {
					vals = append(vals, 0xF000_0000|va)
					if err := as.ResolveSoft(va, cpu.Write); err != nil {
						t.Fatal(err)
					}
					if f := as.Store32(va, uint32(i)); f != nil {
						t.Fatalf("store %#x still faults after resolve", va)
					}
				}
			} else {
				v, f := as.Load32(va)
				if f != nil {
					vals = append(vals, 0xE000_0000|va)
					if err := as.ResolveSoft(va, cpu.Read); err != nil {
						t.Fatal(err)
					}
					v, _ = as.Load32(va)
				}
				vals = append(vals, v)
			}
		}
		return vals, as.Faults
	}
	v1, f1 := run(false)
	v2, f2 := run(true)
	if f1 != f2 {
		t.Fatalf("Faults diverged: untracked %d, tracked %d", f1, f2)
	}
	if len(v1) != len(v2) {
		t.Fatalf("observation streams diverged in length: %d vs %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("observation %d diverged: %#x vs %#x", i, v1[i], v2[i])
		}
	}
}

// TestDirtyTrackingFuzzAgainstGenerations cross-checks the dirty set
// against the frame store-generation oracle: after a random op mix,
// every page whose backing frame changed identity — or kept its identity
// but advanced its store generation — must be in the dirty set. (The
// converse does not hold: sharing-structure changes mark without a
// store, deliberately.)
func TestDirtyTrackingFuzzAgainstGenerations(t *testing.T) {
	const pages = 32
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		as := newAS(t)
		r, _ := mapZero(t, as, 0x10000, pages*mem.PageSize, PermRW)
		peer := newAS(t)
		pr, _ := mapZero(t, peer, 0x80000, pages*mem.PageSize, PermRW)
		for i := uint32(0); i < pages; i++ {
			if rng.Intn(3) > 0 {
				touchStore32(t, as, 0x10000+i*mem.PageSize, i)
			}
			touchStore32(t, peer, 0x80000+i*mem.PageSize, 0x100+i)
		}

		r.StartDirtyTracking()
		type snap struct {
			f   *mem.Frame
			gen uint64
		}
		base := make([]snap, pages)
		for i := uint32(0); i < pages; i++ {
			if f := r.FrameAt(i * mem.PageSize); f != nil {
				base[i] = snap{f, f.Gen}
			}
		}

		store := func(va uint32) {
			for {
				if f := as.Store32(va, rng.Uint32()); f == nil {
					return
				}
				cl, _ := as.Classify(va, cpu.Write)
				switch cl {
				case FaultSoft:
					if err := as.ResolveSoft(va, cpu.Write); err != nil {
						t.Fatal(err)
					}
				case FaultCOW:
					if _, err := as.ResolveCOW(va); err != nil {
						t.Fatal(err)
					}
				default:
					t.Fatalf("store %#x: fault class %v", va, cl)
				}
			}
		}
		for op := 0; op < 400; op++ {
			page := uint32(rng.Intn(pages))
			va := 0x10000 + page*mem.PageSize
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // plain store somewhere in the page
				store(va + uint32(rng.Intn(int(mem.PageSize)))&^3)
			case 5: // read (must not mark)
				as.Load32(va)
			case 6: // share one of our pages into the peer
				if r.FrameAt(page*mem.PageSize) != nil {
					ShareCOW(as, va, peer, 0x80000+page*mem.PageSize)
				}
			case 7: // share a peer page into us (replaces our frame)
				if pr.FrameAt(page*mem.PageSize) != nil {
					ShareCOW(peer, 0x80000+page*mem.PageSize, as, va)
				}
			case 8: // evict (page goes absent; later touches repopulate)
				if f := r.Evict(page * mem.PageSize); f != nil {
					as.Allocator().Free(f)
				}
			case 9: // direct-window write attempt, falling back like a copy loop
				if w := as.DirectWindow(va, cpu.Write, 8); w != nil {
					w[0]++
					// DirectWindow bumped the generation itself.
				} else {
					store(va)
				}
			}
		}

		for i := uint32(0); i < pages; i++ {
			cur := r.FrameAt(i * mem.PageSize)
			switch {
			case cur == nil:
				// Absent: nothing to capture; Populate will log any rebirth.
			case cur != base[i].f || cur.Gen != base[i].gen:
				if !r.IsDirty(i * mem.PageSize) {
					t.Fatalf("seed %d: page %d changed (frame %p→%p gen %d→%d) but is not dirty",
						seed, i, base[i].f, cur, base[i].gen, cur.Gen)
				}
			}
		}
	}
}
