package mmu

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// TestEvictFlushesDerivedTranslations is the stale-translation regression
// test: Region.Evict on a mapped, already-touched page must not leave a
// PTE or TLB entry pointing at the old frame, in any importing space.
func TestEvictFlushesDerivedTranslations(t *testing.T) {
	alloc := mem.NewAllocator(1024)
	as1 := NewAddrSpace(alloc)
	as2 := NewAddrSpace(alloc)
	r := NewRegion(2*mem.PageSize, true)
	m1 := &Mapping{Region: r, Base: 0x10000, Size: r.Size, Perm: PermRW}
	m2 := &Mapping{Region: r, Base: 0x50000, Size: r.Size, Perm: PermRW}
	if err := as1.Map(m1); err != nil {
		t.Fatal(err)
	}
	if err := as2.Map(m2); err != nil {
		t.Fatal(err)
	}

	touchStore32(t, as1, 0x10000, 0xAABBCCDD)
	if _, f := as2.Load32(0x50000); f != nil {
		// as2 hasn't touched the page yet; resolve its soft fault.
		if err := as2.ResolveSoft(0x50000, cpu.Read); err != nil {
			t.Fatal(err)
		}
	}
	if v, f := as2.Load32(0x50000); f != nil || v != 0xAABBCCDD {
		t.Fatalf("shared page read = %#x, %v; want 0xAABBCCDD", v, f)
	}

	old := r.Evict(0)
	if old == nil {
		t.Fatal("Evict returned nil for a populated page")
	}
	// Both spaces held live translations; both must fault now.
	if _, f := as1.Load32(0x10000); f == nil {
		t.Fatal("as1 read hit a stale translation after Evict")
	}
	if _, f := as2.Load32(0x50000); f == nil {
		t.Fatal("as2 read hit a stale translation after Evict")
	}

	// Populate with a different frame: refaulting must observe the new
	// frame's content, not the evicted one's.
	nf, err := alloc.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	nf.Data[0] = 0x5A
	nf.Bump()
	r.Populate(0, nf)
	if err := as1.ResolveSoft(0x10000, cpu.Read); err != nil {
		t.Fatal(err)
	}
	if v, f := as1.Load32(0x10000); f != nil || v != 0x5A {
		t.Fatalf("read after Populate = %#x, %v; want 0x5A", v, f)
	}
	alloc.Free(old)
}

// TestPopulateReplacementFlushes: replacing a present page's frame via
// Populate must also drop derived translations.
func TestPopulateReplacementFlushes(t *testing.T) {
	as := newAS(t)
	r, _ := mapZero(t, as, 0x10000, mem.PageSize, PermRW)
	touchStore32(t, as, 0x10000, 1)

	nf, err := as.Allocator().Alloc()
	if err != nil {
		t.Fatal(err)
	}
	nf.Data[0] = 7
	nf.Bump()
	old := r.Populate(0, nf)
	if old == nil {
		t.Fatal("expected old frame")
	}
	if _, f := as.Load32(0x10000); f == nil {
		t.Fatal("read hit a stale translation after Populate replacement")
	}
	if err := as.ResolveSoft(0x10000, cpu.Read); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.Load32(0x10000); v != 7 {
		t.Fatalf("read %#x after replacement, want new frame content 7", v)
	}
}

// TestSetProtectionDropsTLB: a TLB entry filled by a successful store must
// not outlive a SetProtection to read-only.
func TestSetProtectionDropsTLB(t *testing.T) {
	as := newAS(t)
	_, m := mapZero(t, as, 0x10000, mem.PageSize, PermRW)
	touchStore32(t, as, 0x10000, 1) // fills pt and TLB with write perm

	as.SetProtection(m, PermRead)
	if f := as.Store32(0x10000, 2); f == nil {
		t.Fatal("store allowed after SetProtection to read-only")
	}
	// Reads still work after refaulting.
	if err := as.ResolveSoft(0x10000, cpu.Read); err != nil {
		t.Fatal(err)
	}
	if v, f := as.Load32(0x10000); f != nil || v != 1 {
		t.Fatalf("read = %#x, %v after SetProtection", v, f)
	}
}

// TestUnmapDropsTLB: translations (pt and TLB) must die with the mapping.
func TestUnmapDropsTLB(t *testing.T) {
	as := newAS(t)
	_, m := mapZero(t, as, 0x10000, mem.PageSize, PermRW)
	touchStore32(t, as, 0x10000, 1)

	if !as.Unmap(m) {
		t.Fatal("Unmap failed")
	}
	if _, f := as.Load32(0x10000); f == nil {
		t.Fatal("read hit a stale translation after Unmap")
	}
	if f := as.Store32(0x10000, 2); f == nil {
		t.Fatal("store hit a stale translation after Unmap")
	}
}

// TestFlushRangeHuge exercises the map-iteration path: flushing a range
// much larger than the page table must drop the covered PTEs (and leave
// uncovered ones alone) without iterating every vpn in the range.
func TestFlushRangeHuge(t *testing.T) {
	as := newAS(t)
	mapZero(t, as, 0x10000, 4*mem.PageSize, PermRW)
	mapZero(t, as, 0xF000_0000, mem.PageSize, PermRW)
	for i := uint32(0); i < 4; i++ {
		touchStore32(t, as, 0x10000+i*mem.PageSize, i+1)
	}
	touchStore32(t, as, 0xF000_0000, 99)
	if as.PTEs() != 5 {
		t.Fatalf("PTEs = %d, want 5", as.PTEs())
	}

	// A ~3.5 GB flush covering the low window but not the high one.
	as.FlushRange(0, 0xE000_0000)
	if as.PTEs() != 1 {
		t.Fatalf("PTEs = %d after huge flush, want 1", as.PTEs())
	}
	if _, f := as.Load32(0x10000); f == nil {
		t.Fatal("flushed page still translated")
	}
	if v, f := as.Load32(0xF000_0000); f != nil || v != 99 {
		t.Fatalf("uncovered page lost its translation: %#x, %v", v, f)
	}
}

// TestDirectWindow covers the page-run copy window used by the IPC path.
func TestDirectWindow(t *testing.T) {
	as := newAS(t)
	mapZero(t, as, 0x10000, 2*mem.PageSize, PermRW)
	touchStore32(t, as, 0x10000, 0x01020304)

	// Window is bounded by the page end.
	w := as.DirectWindow(0x10000+mem.PageSize-8, cpu.Read, 64)
	if len(w) != 8 {
		t.Fatalf("window len = %d, want 8 (page bounded)", len(w))
	}
	// Respects max.
	if w := as.DirectWindow(0x10000, cpu.Read, 12); len(w) != 12 {
		t.Fatalf("window len = %d, want 12", len(w))
	}
	// No translation -> nil (second page untouched).
	if w := as.DirectWindow(0x10000+mem.PageSize, cpu.Read, 4); w != nil {
		t.Fatal("window for untranslated page")
	}
	// Write windows bump the frame generation so decode caches notice.
	e, ok := as.pt[mem.VPN(0x10000)]
	if !ok {
		t.Fatal("no pte")
	}
	gen := e.frame.Gen
	if w := as.DirectWindow(0x10000, cpu.Write, 4); w == nil {
		t.Fatal("no write window")
	} else if e.frame.Gen == gen {
		t.Fatal("write window did not bump the frame generation")
	}
	// Disabled fast paths -> nil.
	as.SetFastPaths(false)
	if w := as.DirectWindow(0x10000, cpu.Read, 4); w != nil {
		t.Fatal("window with fast paths disabled")
	}
}

// TestProbePurity: DecodedPageFor and DirectWindow are probes — they must
// not count diagnostic faults even when the translation is missing.
func TestProbePurity(t *testing.T) {
	as := newAS(t)
	mapZero(t, as, 0x10000, mem.PageSize, PermRWX)
	before := as.Faults
	if dp := as.DecodedPageFor(0x10000); dp != nil {
		t.Fatal("decoded page before any translation exists")
	}
	if w := as.DirectWindow(0x10000, cpu.Read, 4); w != nil {
		t.Fatal("window before any translation exists")
	}
	if as.Faults != before {
		t.Fatalf("probes counted faults: %d -> %d", before, as.Faults)
	}
}

// TestTLBSubsetOfPT: randomized flush/touch traffic must never leave a TLB
// slot whose vpn lacks a matching PTE (the TLB ⊆ pt invariant).
func TestTLBSubsetOfPT(t *testing.T) {
	as := newAS(t)
	mapZero(t, as, 0x10000, 64*mem.PageSize, PermRW)
	check := func(when string) {
		t.Helper()
		for _, e := range as.tlb {
			if e.perm == 0 {
				continue
			}
			pe, ok := as.pt[e.vpn]
			if !ok || pe.frame != e.frame || pe.perm != e.perm {
				t.Fatalf("%s: TLB slot vpn=%#x not backed by pt", when, e.vpn)
			}
		}
	}
	for i := uint32(0); i < 64; i++ {
		touchStore32(t, as, 0x10000+i*mem.PageSize, i)
	}
	check("after touch")
	as.FlushRange(0x10000+4*mem.PageSize, 8*mem.PageSize)
	check("after FlushRange")
	as.FlushPage(0x10000)
	check("after FlushPage")
	as.FlushRange(0, 0xFFFF_F000)
	check("after huge flush")
}
