// Package prog is the user-level program builder for the simulated CPU: a
// tiny assembler with labels plus stubs for every Fluke system call. The
// workloads (flukeperf, memtest, the gcc pipeline), the user-mode pager,
// and the examples are all written with it.
package prog

import (
	"fmt"

	"repro/internal/cpu"
)

type fixup struct {
	instr int
	label string
}

// Builder assembles a program for loading at a fixed base address.
type Builder struct {
	base   uint32
	instrs []cpu.Instr
	labels map[string]int
	fixups []fixup
}

// New returns a builder for a program loaded at base (must be 8-byte
// aligned).
func New(base uint32) *Builder {
	if base%cpu.InstrSize != 0 {
		panic(fmt.Sprintf("prog: unaligned base %#x", base))
	}
	return &Builder{base: base, labels: make(map[string]int)}
}

// Base returns the load address.
func (b *Builder) Base() uint32 { return b.base }

// PC returns the address of the next instruction to be emitted.
func (b *Builder) PC() uint32 { return b.base + uint32(len(b.instrs))*cpu.InstrSize }

// Size returns the assembled size in bytes.
func (b *Builder) Size() uint32 { return uint32(len(b.instrs)) * cpu.InstrSize }

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("prog: duplicate label %q", name))
	}
	b.labels[name] = len(b.instrs)
	return b
}

// Addr returns the absolute address of a previously defined label.
func (b *Builder) Addr(name string) uint32 {
	i, ok := b.labels[name]
	if !ok {
		panic(fmt.Sprintf("prog: unknown label %q", name))
	}
	return b.base + uint32(i)*cpu.InstrSize
}

func (b *Builder) emit(in cpu.Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

func (b *Builder) emitLabelImm(in cpu.Instr, label string) *Builder {
	b.fixups = append(b.fixups, fixup{instr: len(b.instrs), label: label})
	return b.emit(in)
}

// Raw instruction emitters.

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(cpu.Instr{Op: cpu.OpNop}) }

// Halt terminates the thread with exit code R1.
func (b *Builder) Halt() *Builder { return b.emit(cpu.Instr{Op: cpu.OpHalt}) }

// Movi loads an immediate: rd = imm.
func (b *Builder) Movi(rd int, imm uint32) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpMovi, Rd: rd, Imm: imm})
}

// Mov copies a register: rd = rs.
func (b *Builder) Mov(rd, rs int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpMov, Rd: rd, Rs: rs})
}

// Add emits rd = rs + rt.
func (b *Builder) Add(rd, rs, rt int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpAdd, Rd: rd, Rs: rs, Rt: rt})
}

// Sub emits rd = rs - rt.
func (b *Builder) Sub(rd, rs, rt int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpSub, Rd: rd, Rs: rs, Rt: rt})
}

// Mul emits rd = rs * rt.
func (b *Builder) Mul(rd, rs, rt int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpMul, Rd: rd, Rs: rs, Rt: rt})
}

// Xor emits rd = rs ^ rt.
func (b *Builder) Xor(rd, rs, rt int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpXor, Rd: rd, Rs: rs, Rt: rt})
}

// And emits rd = rs & rt.
func (b *Builder) And(rd, rs, rt int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpAnd, Rd: rd, Rs: rs, Rt: rt})
}

// Or emits rd = rs | rt.
func (b *Builder) Or(rd, rs, rt int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpOr, Rd: rd, Rs: rs, Rt: rt})
}

// Shl emits rd = rs << rt.
func (b *Builder) Shl(rd, rs, rt int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpShl, Rd: rd, Rs: rs, Rt: rt})
}

// Shr emits rd = rs >> rt.
func (b *Builder) Shr(rd, rs, rt int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpShr, Rd: rd, Rs: rs, Rt: rt})
}

// Addi emits rd = rs + imm.
func (b *Builder) Addi(rd, rs int, imm uint32) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpAddi, Rd: rd, Rs: rs, Imm: imm})
}

// Ld emits rd = mem32[rs+imm].
func (b *Builder) Ld(rd, rs int, imm uint32) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpLd, Rd: rd, Rs: rs, Imm: imm})
}

// St emits mem32[rs+imm] = rt.
func (b *Builder) St(rs int, imm uint32, rt int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpSt, Rs: rs, Rt: rt, Imm: imm})
}

// Ldb emits rd = mem8[rs+imm].
func (b *Builder) Ldb(rd, rs int, imm uint32) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpLdb, Rd: rd, Rs: rs, Imm: imm})
}

// Stb emits mem8[rs+imm] = rt.
func (b *Builder) Stb(rs int, imm uint32, rt int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpStb, Rs: rs, Rt: rt, Imm: imm})
}

// Beq branches to label when rs == rt.
func (b *Builder) Beq(rs, rt int, label string) *Builder {
	return b.emitLabelImm(cpu.Instr{Op: cpu.OpBeq, Rs: rs, Rt: rt}, label)
}

// Bne branches to label when rs != rt.
func (b *Builder) Bne(rs, rt int, label string) *Builder {
	return b.emitLabelImm(cpu.Instr{Op: cpu.OpBne, Rs: rs, Rt: rt}, label)
}

// Blt branches to label when rs < rt (unsigned).
func (b *Builder) Blt(rs, rt int, label string) *Builder {
	return b.emitLabelImm(cpu.Instr{Op: cpu.OpBlt, Rs: rs, Rt: rt}, label)
}

// Bge branches to label when rs >= rt (unsigned).
func (b *Builder) Bge(rs, rt int, label string) *Builder {
	return b.emitLabelImm(cpu.Instr{Op: cpu.OpBge, Rs: rs, Rt: rt}, label)
}

// Jmp jumps to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emitLabelImm(cpu.Instr{Op: cpu.OpJmp}, label)
}

// Call calls the function at label (return address in LR).
func (b *Builder) Call(label string) *Builder {
	return b.emitLabelImm(cpu.Instr{Op: cpu.OpCall}, label)
}

// Ret returns to LR.
func (b *Builder) Ret() *Builder { return b.emit(cpu.Instr{Op: cpu.OpRet}) }

// Syscall emits a call into the syscall entry page for syscall n. The
// caller sets argument registers first.
func (b *Builder) Syscall(n int) *Builder {
	return b.emit(cpu.Instr{Op: cpu.OpCall, Imm: cpu.SyscallEntry(n)})
}

// Assemble resolves labels and returns the image bytes (little-endian).
func (b *Builder) Assemble() ([]byte, error) {
	instrs := make([]cpu.Instr, len(b.instrs))
	copy(instrs, b.instrs)
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("prog: undefined label %q", f.label)
		}
		instrs[f.instr].Imm = b.base + uint32(idx)*cpu.InstrSize
	}
	out := make([]byte, 0, len(instrs)*cpu.InstrSize)
	for _, in := range instrs {
		w0, w1 := in.Encode()
		out = append(out,
			byte(w0), byte(w0>>8), byte(w0>>16), byte(w0>>24),
			byte(w1), byte(w1>>8), byte(w1>>16), byte(w1>>24))
	}
	return out, nil
}

// MustAssemble is Assemble panicking on error (for tests and fixed
// workloads).
func (b *Builder) MustAssemble() []byte {
	out, err := b.Assemble()
	if err != nil {
		panic(err)
	}
	return out
}
