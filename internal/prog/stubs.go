package prog

import "repro/internal/sys"

// Syscall stubs with immediate arguments. Arguments follow the kernel
// convention: args in R1..R5, status in R0, extra results in R1.. . Stubs
// that take registers instead of immediates are suffixed R.

// Null emits the null syscall.
func (b *Builder) Null() *Builder { return b.Syscall(sys.NNull) }

// ThreadSelf emits thread_self (handle in R1, id in R2 after the call).
func (b *Builder) ThreadSelf() *Builder { return b.Syscall(sys.NThreadSelf) }

// ClockGet emits clock_get (µs lo/hi in R1/R2 after the call).
func (b *Builder) ClockGet() *Builder { return b.Syscall(sys.NClockGet) }

// SchedYield emits sched_yield.
func (b *Builder) SchedYield() *Builder { return b.Syscall(sys.NSchedYield) }

// Create emits the create common op for type ot at handle va; extra
// type-specific args must already be in R2..R5.
func (b *Builder) Create(ot sys.ObjType, va uint32) *Builder {
	return b.Movi(1, va).Syscall(sys.CommonOpNum(ot, sys.OpCreate))
}

// Destroy emits the destroy common op for the object of type ot at va.
func (b *Builder) Destroy(ot sys.ObjType, va uint32) *Builder {
	return b.Movi(1, va).Syscall(sys.CommonOpNum(ot, sys.OpDestroy))
}

// GetState emits the get_state common op: object at va, buffer at buf.
func (b *Builder) GetState(ot sys.ObjType, va, buf uint32) *Builder {
	return b.Movi(1, va).Movi(2, buf).Syscall(sys.CommonOpNum(ot, sys.OpGetState))
}

// SetState emits the set_state common op: object at va, buffer at buf.
func (b *Builder) SetState(ot sys.ObjType, va, buf uint32) *Builder {
	return b.Movi(1, va).Movi(2, buf).Syscall(sys.CommonOpNum(ot, sys.OpSetState))
}

// MutexCreate creates a mutex at handle va.
func (b *Builder) MutexCreate(va uint32) *Builder { return b.Create(sys.ObjMutex, va) }

// MutexLock locks the mutex at va.
func (b *Builder) MutexLock(va uint32) *Builder {
	return b.Movi(1, va).Syscall(sys.NMutexLock)
}

// MutexUnlock unlocks the mutex at va.
func (b *Builder) MutexUnlock(va uint32) *Builder {
	return b.Movi(1, va).Syscall(sys.NMutexUnlock)
}

// MutexTrylock try-locks the mutex at va.
func (b *Builder) MutexTrylock(va uint32) *Builder {
	return b.Movi(1, va).Syscall(sys.NMutexTrylock)
}

// CondCreate creates a condition variable at handle va.
func (b *Builder) CondCreate(va uint32) *Builder { return b.Create(sys.ObjCond, va) }

// CondWait waits on the cond at condVA releasing the mutex at mutexVA.
func (b *Builder) CondWait(condVA, mutexVA uint32) *Builder {
	return b.Movi(1, condVA).Movi(2, mutexVA).Syscall(sys.NCondWait)
}

// CondSignal signals the cond at va.
func (b *Builder) CondSignal(va uint32) *Builder {
	return b.Movi(1, va).Syscall(sys.NCondSignal)
}

// CondBroadcast broadcasts the cond at va.
func (b *Builder) CondBroadcast(va uint32) *Builder {
	return b.Movi(1, va).Syscall(sys.NCondBroadcast)
}

// ThreadSleepUS sleeps for us microseconds (zeroing the deadline
// roll-forward registers per the calling convention).
func (b *Builder) ThreadSleepUS(us uint32) *Builder {
	return b.Movi(1, us).Movi(2, 0).Movi(3, 0).Syscall(sys.NThreadSleep)
}

// IRQWait waits for virtual interrupt line (zeroing the arming register).
func (b *Builder) IRQWait(line uint32) *Builder {
	return b.Movi(1, line).Movi(2, 0).Syscall(sys.NIRQWait)
}

// RegionSearch scans [start, start+len) for a bound handle.
func (b *Builder) RegionSearch(start, length uint32) *Builder {
	return b.Movi(1, start).Movi(2, length).Syscall(sys.NRegionSearch)
}

// MemAllocate populates npages of the region at regionVA from byte offset
// off.
func (b *Builder) MemAllocate(regionVA, off, npages uint32) *Builder {
	return b.Movi(1, regionVA).Movi(2, off).Movi(3, npages).Syscall(sys.NMemAllocate)
}

// --- IPC stubs ---

// IPCClientConnectSend connects via the port reference at refVA and sends
// words from buf.
func (b *Builder) IPCClientConnectSend(buf, words, refVA uint32) *Builder {
	return b.Movi(1, buf).Movi(2, words).Movi(3, refVA).Syscall(sys.NIPCClientConnectSend)
}

// IPCClientConnectSendOverReceive performs a full RPC: send words from
// buf, receive up to rwords into rbuf.
func (b *Builder) IPCClientConnectSendOverReceive(buf, words, refVA, rbuf, rwords uint32) *Builder {
	return b.Movi(1, buf).Movi(2, words).Movi(3, refVA).Movi(4, rbuf).Movi(5, rwords).
		Syscall(sys.NIPCClientConnectSendOverReceive)
}

// IPCClientSend sends words from buf on the current connection.
func (b *Builder) IPCClientSend(buf, words uint32) *Builder {
	return b.Movi(1, buf).Movi(2, words).Syscall(sys.NIPCClientSend)
}

// IPCClientReceive receives up to words into buf.
func (b *Builder) IPCClientReceive(buf, words uint32) *Builder {
	return b.Movi(1, buf).Movi(2, words).Syscall(sys.NIPCClientReceive)
}

// IPCClientDisconnect closes the connection.
func (b *Builder) IPCClientDisconnect() *Builder {
	return b.Syscall(sys.NIPCClientDisconnect)
}

// IPCWaitReceive waits on the portset at psVA and receives up to words
// into buf.
func (b *Builder) IPCWaitReceive(buf, words, psVA uint32) *Builder {
	return b.Movi(1, buf).Movi(2, words).Movi(3, psVA).Syscall(sys.NIPCWaitReceive)
}

// IPCReplyWaitReceive replies with words from buf, then waits on the
// portset at psVA for the next request into rbuf/rwords.
func (b *Builder) IPCReplyWaitReceive(buf, words, psVA, rbuf, rwords uint32) *Builder {
	return b.Movi(1, buf).Movi(2, words).Movi(3, psVA).Movi(4, rbuf).Movi(5, rwords).
		Syscall(sys.NIPCReplyWaitReceive)
}

// IPCReply replies with words from buf and disconnects.
func (b *Builder) IPCReply(buf, words uint32) *Builder {
	return b.Movi(1, buf).Movi(2, words).Syscall(sys.NIPCReply)
}

// IPCSendOneway sends a connectionless message.
func (b *Builder) IPCSendOneway(buf, words, refVA uint32) *Builder {
	return b.Movi(1, buf).Movi(2, words).Movi(3, refVA).Syscall(sys.NIPCSendOneway)
}
