package prog

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/sys"
)

func TestAssembleResolvesLabels(t *testing.T) {
	b := New(0x1000)
	b.Movi(0, 5).
		Label("loop").
		Addi(0, 0, 0xFFFFFFFF). // decrement
		Bne(0, 7, "loop").      // R7 is 0 here? (LR) — compare against R1=0
		Halt()
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 4*cpu.InstrSize {
		t.Fatalf("image size %d", len(img))
	}
	// The Bne target must be the absolute address of "loop".
	w0 := uint32(img[16]) | uint32(img[17])<<8 | uint32(img[18])<<16 | uint32(img[19])<<24
	imm := uint32(img[20]) | uint32(img[21])<<8 | uint32(img[22])<<16 | uint32(img[23])<<24
	in := cpu.Decode(w0, imm)
	if in.Op != cpu.OpBne || in.Imm != 0x1000+cpu.InstrSize {
		t.Fatalf("decoded %v imm=%#x, want bne to %#x", in.Op, in.Imm, 0x1000+cpu.InstrSize)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := New(0)
	b.Jmp("nowhere")
	if _, err := b.Assemble(); err == nil {
		t.Fatal("undefined label assembled")
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate label")
		}
	}()
	b := New(0)
	b.Label("x").Label("x")
}

func TestUnalignedBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unaligned base")
		}
	}()
	New(3)
}

func TestAddrAndPC(t *testing.T) {
	b := New(0x2000)
	b.Nop()
	b.Label("here")
	if b.Addr("here") != 0x2000+cpu.InstrSize {
		t.Fatalf("Addr = %#x", b.Addr("here"))
	}
	if b.PC() != 0x2000+cpu.InstrSize {
		t.Fatalf("PC = %#x", b.PC())
	}
}

func TestSyscallStubEncodesEntry(t *testing.T) {
	b := New(0)
	b.MutexLock(0x4000)
	img := b.MustAssemble()
	// Second instruction is the CALL into the syscall page.
	w0 := uint32(img[8]) | uint32(img[9])<<8 | uint32(img[10])<<16 | uint32(img[11])<<24
	imm := uint32(img[12]) | uint32(img[13])<<8 | uint32(img[14])<<16 | uint32(img[15])<<24
	in := cpu.Decode(w0, imm)
	if in.Op != cpu.OpCall || in.Imm != cpu.SyscallEntry(sys.NMutexLock) {
		t.Fatalf("stub = %v %#x", in.Op, in.Imm)
	}
}
