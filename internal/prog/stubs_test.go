package prog

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/sys"
)

// decode extracts instruction i from an assembled image.
func decode(img []byte, i int) cpu.Instr {
	o := i * cpu.InstrSize
	w0 := uint32(img[o]) | uint32(img[o+1])<<8 | uint32(img[o+2])<<16 | uint32(img[o+3])<<24
	w1 := uint32(img[o+4]) | uint32(img[o+5])<<8 | uint32(img[o+6])<<16 | uint32(img[o+7])<<24
	return cpu.Decode(w0, w1)
}

// lastCallTarget returns the syscall number of the final CALL in the
// program built by fn.
func lastCallTarget(t *testing.T, fn func(b *Builder)) int {
	t.Helper()
	b := New(0)
	fn(b)
	img := b.MustAssemble()
	n := len(img) / cpu.InstrSize
	in := decode(img, n-1)
	if in.Op != cpu.OpCall {
		t.Fatalf("last instruction %v, want call", in.Op)
	}
	num := cpu.SyscallNum(in.Imm)
	if num < 0 {
		t.Fatalf("call target %#x is not a syscall entry", in.Imm)
	}
	return num
}

// TestStubTargets pins every stub to its syscall number.
func TestStubTargets(t *testing.T) {
	cases := []struct {
		name string
		fn   func(b *Builder)
		want int
	}{
		{"Null", func(b *Builder) { b.Null() }, sys.NNull},
		{"ThreadSelf", func(b *Builder) { b.ThreadSelf() }, sys.NThreadSelf},
		{"ClockGet", func(b *Builder) { b.ClockGet() }, sys.NClockGet},
		{"SchedYield", func(b *Builder) { b.SchedYield() }, sys.NSchedYield},
		{"MutexCreate", func(b *Builder) { b.MutexCreate(4) }, sys.CommonOpNum(sys.ObjMutex, sys.OpCreate)},
		{"MutexLock", func(b *Builder) { b.MutexLock(4) }, sys.NMutexLock},
		{"MutexUnlock", func(b *Builder) { b.MutexUnlock(4) }, sys.NMutexUnlock},
		{"MutexTrylock", func(b *Builder) { b.MutexTrylock(4) }, sys.NMutexTrylock},
		{"CondCreate", func(b *Builder) { b.CondCreate(4) }, sys.CommonOpNum(sys.ObjCond, sys.OpCreate)},
		{"CondWait", func(b *Builder) { b.CondWait(4, 8) }, sys.NCondWait},
		{"CondSignal", func(b *Builder) { b.CondSignal(4) }, sys.NCondSignal},
		{"CondBroadcast", func(b *Builder) { b.CondBroadcast(4) }, sys.NCondBroadcast},
		{"ThreadSleepUS", func(b *Builder) { b.ThreadSleepUS(9) }, sys.NThreadSleep},
		{"IRQWait", func(b *Builder) { b.IRQWait(1) }, sys.NIRQWait},
		{"RegionSearch", func(b *Builder) { b.RegionSearch(0, 64) }, sys.NRegionSearch},
		{"MemAllocate", func(b *Builder) { b.MemAllocate(4, 0, 1) }, sys.NMemAllocate},
		{"Destroy", func(b *Builder) { b.Destroy(sys.ObjPort, 4) }, sys.CommonOpNum(sys.ObjPort, sys.OpDestroy)},
		{"GetState", func(b *Builder) { b.GetState(sys.ObjThread, 4, 8) }, sys.CommonOpNum(sys.ObjThread, sys.OpGetState)},
		{"SetState", func(b *Builder) { b.SetState(sys.ObjThread, 4, 8) }, sys.CommonOpNum(sys.ObjThread, sys.OpSetState)},
		{"IPCClientConnectSend", func(b *Builder) { b.IPCClientConnectSend(0, 1, 4) }, sys.NIPCClientConnectSend},
		{"IPCClientConnectSendOverReceive", func(b *Builder) { b.IPCClientConnectSendOverReceive(0, 1, 4, 8, 1) }, sys.NIPCClientConnectSendOverReceive},
		{"IPCClientSend", func(b *Builder) { b.IPCClientSend(0, 1) }, sys.NIPCClientSend},
		{"IPCClientReceive", func(b *Builder) { b.IPCClientReceive(0, 1) }, sys.NIPCClientReceive},
		{"IPCClientDisconnect", func(b *Builder) { b.IPCClientDisconnect() }, sys.NIPCClientDisconnect},
		{"IPCWaitReceive", func(b *Builder) { b.IPCWaitReceive(0, 1, 4) }, sys.NIPCWaitReceive},
		{"IPCReplyWaitReceive", func(b *Builder) { b.IPCReplyWaitReceive(0, 1, 4, 8, 1) }, sys.NIPCReplyWaitReceive},
		{"IPCReply", func(b *Builder) { b.IPCReply(0, 1) }, sys.NIPCReply},
		{"IPCSendOneway", func(b *Builder) { b.IPCSendOneway(0, 1, 4) }, sys.NIPCSendOneway},
	}
	for _, c := range cases {
		if got := lastCallTarget(t, c.fn); got != c.want {
			t.Errorf("%s calls %s, want %s", c.name, sys.Name(got), sys.Name(c.want))
		}
	}
}

// TestThreadSleepZeroesRollForwardRegs pins the calling convention the
// kernel's deadline roll-forward relies on.
func TestThreadSleepZeroesRollForwardRegs(t *testing.T) {
	b := New(0)
	b.ThreadSleepUS(123)
	img := b.MustAssemble()
	// movi r1,123 ; movi r2,0 ; movi r3,0 ; call
	checks := []struct {
		idx int
		rd  int
		imm uint32
	}{{0, 1, 123}, {1, 2, 0}, {2, 3, 0}}
	for _, c := range checks {
		in := decode(img, c.idx)
		if in.Op != cpu.OpMovi || in.Rd != c.rd || in.Imm != c.imm {
			t.Fatalf("instr %d = %v r%d imm=%d", c.idx, in.Op, in.Rd, in.Imm)
		}
	}
}
