package prog

import (
	"testing"

	"repro/internal/cpu"
)

// TestAllEmittersEncode drives every raw emitter once and checks the
// decoded opcode stream.
func TestAllEmittersEncode(t *testing.T) {
	b := New(0x1000)
	b.Nop().
		Movi(1, 7).
		Mov(2, 1).
		Add(3, 1, 2).
		Sub(3, 3, 1).
		Mul(4, 1, 2).
		Xor(4, 4, 4).
		And(5, 1, 2).
		Or(5, 5, 1).
		Shl(6, 1, 2).
		Shr(6, 6, 2).
		Addi(1, 1, 3).
		Ld(2, 1, 0).
		St(1, 4, 2).
		Ldb(2, 1, 0).
		Stb(1, 4, 2).
		Label("x").
		Beq(1, 2, "x").
		Bne(1, 2, "x").
		Blt(1, 2, "x").
		Bge(1, 2, "x").
		Jmp("x").
		Call("x").
		Ret().
		Halt()
	img := b.MustAssemble()
	wantOps := []cpu.Opcode{
		cpu.OpNop, cpu.OpMovi, cpu.OpMov, cpu.OpAdd, cpu.OpSub, cpu.OpMul,
		cpu.OpXor, cpu.OpAnd, cpu.OpOr, cpu.OpShl, cpu.OpShr, cpu.OpAddi,
		cpu.OpLd, cpu.OpSt, cpu.OpLdb, cpu.OpStb,
		cpu.OpBeq, cpu.OpBne, cpu.OpBlt, cpu.OpBge,
		cpu.OpJmp, cpu.OpCall, cpu.OpRet, cpu.OpHalt,
	}
	if len(img) != len(wantOps)*cpu.InstrSize {
		t.Fatalf("image %d bytes, want %d instrs", len(img), len(wantOps))
	}
	for i, want := range wantOps {
		in := decode(img, i)
		if in.Op != want {
			t.Fatalf("instr %d = %v, want %v", i, in.Op, want)
		}
	}
	// All label fixups point at "x" (instruction 16).
	target := b.Addr("x")
	if target != 0x1000+16*cpu.InstrSize {
		t.Fatalf("label at %#x", target)
	}
	for i := 16; i <= 21; i++ {
		if in := decode(img, i); in.Imm != target {
			t.Fatalf("instr %d target %#x, want %#x", i, in.Imm, target)
		}
	}
}

func TestSizeAndBase(t *testing.T) {
	b := New(0x2000)
	if b.Base() != 0x2000 || b.Size() != 0 {
		t.Fatal("fresh builder geometry")
	}
	b.Nop().Nop()
	if b.Size() != 2*cpu.InstrSize {
		t.Fatalf("Size=%d", b.Size())
	}
}
