// Command flukebench regenerates the measured tables and figures of the
// paper's evaluation: IPC restart costs (Table 3), application performance
// across the five kernel configurations (Table 5), preemption latency
// (Table 6), per-thread memory overhead (Table 7), the §5.5 null-syscall
// architectural-bias microbenchmark, and the multiprocessor IPC-scaling
// matrix (CPU count x lock model).
//
// By default it runs everything at full scale (the paper's 16 MB memtest
// and multi-megabyte IPC transfers); -fast selects scaled-down workloads
// that finish in a few seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// matrix prints the configuration-matrix header for one table: which
// execution models, preemption modes, CPU counts, and lock models the
// experiment sweeps, so a reader can tell at a glance what each row is
// measured against.
func matrix(models, preempts, cpus, lockmodels string) {
	fmt.Printf("configurations: model={%s} x preempt={%s} x cpus={%s} x lockmodel={%s}\n",
		models, preempts, cpus, lockmodels)
}

// paperMatrix is the header for experiments that sweep the paper's five
// uniprocessor configurations (the process model in all three preemption
// modes, the interrupt model in the two it supports).
func paperMatrix() {
	matrix("process,interrupt", "none,partial,full(process only)", "1", "big")
}

func main() {
	fast := flag.Bool("fast", false, "run scaled-down workloads")
	t3 := flag.Bool("table3", false, "run only Table 3")
	t5 := flag.Bool("table5", false, "run only Table 5")
	t6 := flag.Bool("table6", false, "run only Table 6")
	t7 := flag.Bool("table7", false, "run only Table 7")
	nullsys := flag.Bool("nullsys", false, "run only the null-syscall microbenchmark")
	nullrpc := flag.Bool("nullrpc", false, "run only the null-RPC fastpath on/off microbenchmark")
	ablate := flag.Bool("ablate", false, "run only the preemption-parameter ablations")
	driver := flag.Bool("driver", false, "run only the driver-latency extension experiment")
	scaling := flag.Bool("scaling", false, "run only the multiprocessor IPC-scaling matrix")
	crossover := flag.Bool("crossover", false, "run only the 1-64 CPU lock-model crossover sweep (big vs persub vs fine)")
	scale := flag.Int("scale", 64, "largest CPU count in the crossover sweep (CI smoke caps this)")
	bandwidth := flag.Bool("bandwidth", false, "run only the bulk-IPC bandwidth sweep (zero-copy vs copy)")
	critpath := flag.Bool("critpath", false, "run only the causal critical-path decomposition (null-RPC and bulk transfers, hop by hop)")
	interp := flag.Bool("interp", false, "run only the interpreter-tier comparison (slow vs decode-cache vs threaded code)")
	netload := flag.Bool("netload", false, "run only the NIC load generator (coalescing x zero-copy modes, then the tuned CPU x lock-model sweep)")
	migrate := flag.Bool("migrate", false, "run only the pre-copy live-migration sweep (working set x write rate x rounds)")
	flag.Parse()

	any := *t3 || *t5 || *t6 || *t7 || *nullsys || *nullrpc || *ablate || *driver || *scaling || *crossover || *bandwidth || *critpath || *interp || *netload || *migrate
	show := func(sel bool) bool { return sel || !any }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "flukebench:", err)
		os.Exit(1)
	}
	timed := func(name string, fn func()) {
		start := time.Now()
		fn()
		fmt.Printf("(%s regenerated in %.1fs host time)\n\n", name, time.Since(start).Seconds())
	}

	if show(*t3) {
		timed("Table 3", func() {
			rows, err := experiments.Table3()
			if err != nil {
				fail(err)
			}
			matrix("interrupt", "partial", "1", "big")
			fmt.Println(experiments.Table3Render(rows))
			fmt.Println(experiments.Table3MetricsAppendix(rows))
		})
	}
	if show(*t5) {
		timed("Table 5", func() {
			sc := experiments.FullTable5Scale()
			if *fast {
				sc = experiments.FastTable5Scale()
			}
			rows, err := experiments.Table5(sc)
			if err != nil {
				fail(err)
			}
			paperMatrix()
			fmt.Println(experiments.Table5Render(rows))
			fmt.Println(experiments.Table5MetricsAppendix(rows))
		})
	}
	if show(*t6) {
		timed("Table 6", func() {
			sc := workload.DefaultFlukeperfScale()
			if *fast {
				sc = experiments.FastTable5Scale().Flukeperf
			}
			rows, err := experiments.Table6(sc)
			if err != nil {
				fail(err)
			}
			paperMatrix()
			fmt.Println(experiments.Table6Render(rows))
		})
	}
	if show(*t7) {
		timed("Table 7", func() {
			paperMatrix()
			fmt.Println(experiments.Table7Render(experiments.Table7()))
		})
	}
	if show(*nullsys) {
		timed("null-syscall microbenchmark", func() {
			p, i, delta, err := experiments.NullSyscall(20000)
			if err != nil {
				fail(err)
			}
			matrix("process,interrupt", "none", "1", "big")
			fmt.Println(experiments.NullSyscallRender(p, i, delta))
		})
	}
	if show(*nullrpc) {
		timed("null-RPC microbenchmark", func() {
			on, off, drop, err := experiments.NullRPC(20000)
			if err != nil {
				fail(err)
			}
			matrix("process", "none", "1", "big")
			fmt.Println(experiments.NullRPCRender(on, off, drop))
		})
	}
	if *ablate {
		timed("ablations", func() {
			rows, err := experiments.DefaultAblation()
			if err != nil {
				fail(err)
			}
			paperMatrix()
			fmt.Println(experiments.AblationRender(rows))
			cr, err := experiments.ContinuationRecognition()
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.ContRecRender(cr))
		})
	}
	if *driver {
		timed("driver latency", func() {
			sc := workload.DefaultFlukeperfScale()
			if *fast {
				sc = experiments.FastTable5Scale().Flukeperf
			}
			rows, err := experiments.DriverLatency(sc, 50)
			if err != nil {
				fail(err)
			}
			paperMatrix()
			fmt.Println(experiments.DriverLatencyRender(rows))
		})
	}
	if show(*bandwidth) {
		timed("bulk-IPC bandwidth", func() {
			rows, err := experiments.Bandwidth()
			if err != nil {
				fail(err)
			}
			matrix("process", "none", "1,2,4", "big,persub")
			fmt.Println(experiments.BandwidthRender(rows))
		})
	}
	if show(*critpath) {
		timed("critical path", func() {
			count := 2000
			if *fast {
				count = 200
			}
			matrix("process", "none", "1", "big")
			for _, disable := range []bool{false, true} {
				r, err := experiments.CritPathNullRPC(count, disable)
				if err != nil {
					fail(err)
				}
				fmt.Println(experiments.CritPathRender(r))
			}
			r, err := experiments.CritPathBulk(4, 64)
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.CritPathRender(r))
		})
	}
	if *interp {
		timed("interpreter tiers", func() {
			iters := 2_000_000
			if *fast {
				iters = 200_000
			}
			rows, err := experiments.InterpreterTiers(iters)
			if err != nil {
				fail(err)
			}
			matrix("process", "none", "1", "big")
			fmt.Println(experiments.InterpreterTiersRender(rows))
		})
	}
	if *crossover {
		timed("lock-model crossover", func() {
			sc := experiments.DefaultCrossoverScale()
			if *fast {
				sc = experiments.FastCrossoverScale()
			}
			var cpus []int
			for _, n := range experiments.CrossoverCPUs {
				if n <= *scale {
					cpus = append(cpus, n)
				}
			}
			rows, err := experiments.LockCrossover(sc, cpus)
			if err != nil {
				fail(err)
			}
			matrix("interrupt", "partial", "1..64", "big,persub,fine")
			fmt.Println(experiments.LockCrossoverRender(rows))
		})
	}
	if *netload {
		timed("netload", func() {
			sc := experiments.DefaultNetloadScale()
			if *fast {
				sc = experiments.FastNetloadScale()
			}
			rep, err := experiments.Netload(sc, experiments.NetloadCPUs, experiments.NetloadLockModels)
			if err != nil {
				fail(err)
			}
			matrix("interrupt", "partial", "1,2,4", "big,persub,fine")
			fmt.Println(experiments.NetloadRender(rep))
		})
	}
	if *migrate {
		timed("pre-copy migration", func() {
			rows, err := experiments.Migrate(*fast)
			if err != nil {
				fail(err)
			}
			matrix("process", "none", "1", "big")
			fmt.Println(experiments.MigrateRender(rows))
		})
	}
	if show(*scaling) {
		timed("IPC scaling", func() {
			sc := experiments.DefaultScalingScale()
			if *fast {
				sc = experiments.FastScalingScale()
			}
			rows, err := experiments.IPCScaling(sc, []int{1, 2, 4})
			if err != nil {
				fail(err)
			}
			matrix("interrupt", "partial", "1,2,4", "big,persub")
			fmt.Println(experiments.IPCScalingRender(rows))
		})
	}
}
