// Command flukeinfo prints the static artifacts of the paper: the syscall
// inventory (Table 1), the primitive object types (Table 2), the kernel
// configuration matrix (Table 4), and the API/execution-model continuum
// (Figure 1). With -syscalls it dumps the full 107-entry syscall table.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/sys"
)

func main() {
	table1 := flag.Bool("table1", false, "print only Table 1")
	table2 := flag.Bool("table2", false, "print only Table 2")
	table4 := flag.Bool("table4", false, "print only Table 4")
	figure1 := flag.Bool("figure1", false, "print only Figure 1")
	syscalls := flag.Bool("syscalls", false, "dump the full syscall table")
	flag.Parse()

	any := *table1 || *table2 || *table4 || *figure1 || *syscalls
	show := func(sel bool) bool { return sel || !any }

	if show(*table1) {
		fmt.Println(experiments.Table1())
	}
	if show(*table2) {
		fmt.Println(experiments.Table2())
	}
	if show(*table4) {
		fmt.Println(experiments.Table4())
	}
	if show(*figure1) {
		fmt.Println(experiments.Figure1())
	}
	if *syscalls {
		fmt.Println("The complete Fluke system call API:")
		for _, in := range sys.All() {
			fmt.Printf("  %3d  %-40s %s\n", in.Num, in.Name, in.Cat)
		}
	}
}
