// Command flukerun runs one of the paper's workloads (flukeperf, memtest,
// gcc) on a chosen kernel configuration and reports timing and kernel
// statistics — the raw material behind Tables 5 and 6.
//
// Usage:
//
//	flukerun -workload flukeperf -model interrupt -preempt pp
//	flukerun -workload memtest -mb 16 -model process -preempt fp -probe
//	flukerun -workload flukeperf -fast -metrics -trace-out run.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/observe"
	"repro/internal/sys"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "flukeperf", "workload: flukeperf | memtest | gcc | diskbench | netserve")
	model := flag.String("model", "process", "execution model: process | interrupt")
	preempt := flag.String("preempt", "np", "preemption: np | pp | fp")
	mb := flag.Uint("mb", 16, "memtest working set in MB")
	probe := flag.Bool("probe", false, "install the 1 ms high-priority latency probe")
	fastFlag := flag.Bool("fast", false, "scaled-down workload")
	traceLines := flag.Bool("trace", false, "trace every syscall completion as it happens")
	traceBuf := flag.Int("tracebuf", 0, "dump the last N typed kernel trace events after the run")
	topN := flag.Int("top", 10, "show the N most frequent syscalls")
	metricsFlag := flag.Bool("metrics", false, "attach the kernel metrics registry and print its snapshot")
	traceOut := flag.String("trace-out", "", "write the kernel trace as Perfetto/Chrome trace_event JSON to FILE")
	cpus := flag.Int("cpus", 1, "number of simulated CPUs")
	lockmodel := flag.String("lockmodel", "big", "kernel lock model: big | persub | fine")
	noFastpath := flag.Bool("no-ipc-fastpath", false, "disable the IPC direct-handoff fast path")
	noZeroCopy := flag.Bool("no-zerocopy", false, "disable zero-copy bulk IPC (copy-on-write frame sharing)")
	noNICCoalesce := flag.Bool("no-nic-coalesce", false, "disable NIC interrupt coalescing (one interrupt per received frame)")
	noThreaded := flag.Bool("no-threaded-code", false, "disable the threaded-code interpreter tier (fused superinstruction blocks)")
	tlbSize := flag.Int("tlbsize", 0, "software TLB entries per address space (0 = default 256, rounded up to a power of two)")
	traceRing := flag.Int("trace-ring", 1<<18, "trace ring capacity in events (for -trace-out, -spans, and -listen; older events drop once it wraps)")
	profileOut := flag.String("profile-out", "", "enable the cycle profiler and write its pprof protobuf to FILE (go tool pprof FILE)")
	profileFolded := flag.String("profile-folded", "", "enable the cycle profiler and write folded stacks to FILE (flamegraph.pl / speedscope input)")
	spansFlag := flag.Bool("spans", false, "enable causal IPC spans (Perfetto flow events in the -trace-out / -listen export)")
	listen := flag.String("listen", "", "serve live observation on ADDR (:8080): /metrics Prometheus text, /profile pprof, /trace Perfetto JSON; implies -metrics and the profiler")
	ckptUS := flag.Uint64("checkpoint", 0, "warm-snapshot the workload space every N virtual µs (first full, then incremental deltas) and print the checkpoint accounting")
	flag.Parse()

	cfg := core.Config{
		NumCPUs: *cpus, DisableIPCFastPath: *noFastpath,
		DisableZeroCopy: *noZeroCopy, DisableThreadedCode: *noThreaded,
		DisableNICCoalesce: *noNICCoalesce,
		TLBSize:            *tlbSize,
		EnableProfiler:     *profileOut != "" || *profileFolded != "" || *listen != "",
		EnableIPCSpans:     *spansFlag,
	}
	lm, lmErr := core.ParseLockModel(*lockmodel)
	if lmErr != nil {
		usage(lmErr)
	}
	cfg.LockModel = lm
	if *cpus < 1 || *cpus > core.MaxCPUs {
		usage(fmt.Errorf("-cpus %d out of range: want 1..%d", *cpus, core.MaxCPUs))
	}
	switch *model {
	case "process":
		cfg.Model = core.ModelProcess
	case "interrupt":
		cfg.Model = core.ModelInterrupt
	default:
		fail(fmt.Errorf("unknown model %q", *model))
	}
	switch *preempt {
	case "np":
		cfg.Preempt = core.PreemptNone
	case "pp":
		cfg.Preempt = core.PreemptPartial
	case "fp":
		cfg.Preempt = core.PreemptFull
	default:
		fail(fmt.Errorf("unknown preemption %q", *preempt))
	}
	if err := cfg.Validate(); err != nil {
		fail(err)
	}
	if *traceLines {
		cfg.TraceSyscalls = func(line string) { fmt.Println(line) }
	}

	k := core.New(cfg)
	var m *core.KernelMetrics
	if *metricsFlag || *listen != "" {
		m = k.EnableMetrics()
	}
	var ring *trace.Ring
	if *traceBuf > 0 {
		ring = trace.NewRing(*traceBuf)
		k.Tracer = ring
	} else if *traceOut != "" || *spansFlag || *listen != "" {
		// The exporter needs the typed event ring even when the user
		// didn't ask for a textual dump; the default 256Ki events is a
		// few seconds of flukeperf (tune with -trace-ring).
		ring = trace.NewRing(*traceRing)
		k.Tracer = ring
	}
	var (
		w   *workload.Workload
		err error
	)
	switch *wl {
	case "flukeperf":
		sc := workload.DefaultFlukeperfScale()
		if *fastFlag {
			sc = workload.SmallFlukeperfScale()
		}
		w, err = workload.NewFlukeperf(k, sc)
	case "memtest":
		w, err = workload.NewMemtest(k, uint32(*mb)<<20)
	case "gcc":
		sc := workload.DefaultGCCScale()
		if *fastFlag {
			sc = workload.SmallGCCScale()
		}
		w, err = workload.NewGCC(k, sc)
	case "diskbench":
		sc := workload.DefaultDiskbenchScale()
		if *fastFlag {
			sc = workload.SmallDiskbenchScale()
		}
		w, err = workload.NewDiskbench(k, sc)
	case "netserve":
		sc := workload.DefaultNetserveScale()
		if *fastFlag {
			sc = workload.SmallNetserveScale()
		}
		w, err = workload.NewNetserve(k, sc)
	default:
		err = fmt.Errorf("unknown workload %q", *wl)
	}
	if err != nil {
		fail(err)
	}

	var p *workload.Probe
	if *probe {
		p = workload.InstallProbe(k, 0, 0)
	}

	// The live endpoint: HTTP handlers park, the simulation loop answers
	// at its next inter-dispatch boundary via the RunPolling hook.
	var poll func()
	if *listen != "" {
		srv, err := observe.Listen(*listen)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		take := func() observe.Snapshot {
			var snap observe.Snapshot
			snap.VirtualNow = k.Now()
			if m != nil {
				k.SyncTraceMetrics()
				if w.NIC != nil {
					w.NIC.PublishMetrics(m.Registry)
				}
				var buf bytes.Buffer
				if err := m.Registry.Snapshot().WritePrometheus(&buf); err == nil {
					snap.Metrics = buf.Bytes()
				}
			}
			if k.ProfileEnabled() {
				var buf bytes.Buffer
				if err := k.ProfileSnapshot().WritePprof(&buf); err == nil {
					snap.Profile = buf.Bytes()
				}
			}
			if ring != nil {
				var buf bytes.Buffer
				if err := ring.ExportJSON(&buf); err == nil {
					snap.Trace = buf.Bytes()
				}
			}
			return snap
		}
		poll = func() { srv.Poll(take) }
		fmt.Printf("observing on http://%s (/metrics /profile /trace)\n", srv.Addr())
	}

	// Periodic warm checkpoints: the first poll past each interval takes
	// a memory snapshot of the workload's space without stopping it — a
	// full one the first time, incremental deltas after. The dirty
	// tracker keeps the deltas proportional to the write rate, and the
	// accounting below shows what that saves over full snapshots.
	var ck struct {
		base                  *checkpoint.Image
		fulls, deltas         int
		fullBytes, deltaBytes int
		cleanFrames           int
	}
	if *ckptUS > 0 {
		if len(w.Done) == 0 {
			fail(fmt.Errorf("-checkpoint: workload %s has no completion threads to locate a space", w.Name))
		}
		ckSpace := w.Done[0].Space
		interval := *ckptUS * clock.CyclesPerMicrosecond
		next := k.Now() + interval
		inner := poll
		poll = func() {
			if inner != nil {
				inner()
			}
			if k.Now() < next || ckSpace.Dead {
				return
			}
			next = k.Now() + interval
			if ck.base == nil {
				img, err := checkpoint.SnapshotMemory(k, ckSpace)
				if err != nil {
					fail(err)
				}
				ck.base = img
				ck.fulls++
				ck.fullBytes += img.FrameBytes()
				return
			}
			d, img, err := checkpoint.SnapshotMemoryDelta(k, ckSpace, ck.base)
			if err != nil {
				fail(err)
			}
			ck.base = img
			ck.deltas++
			ck.deltaBytes += d.FrameBytes()
			ck.cleanFrames += d.CleanFrames
		}
	}

	cycles, err := w.RunPolling(1<<62, poll)
	if err != nil {
		fail(err)
	}
	if w.Check != nil {
		if err := w.Check(); err != nil {
			fail(err)
		}
	}

	mp := ""
	if *cpus > 1 {
		mp = fmt.Sprintf(" (%d CPUs, %s lock)", *cpus, cfg.LockModel)
	}
	fmt.Printf("workload %s on %s%s: %.2f virtual ms (%d cycles)\n",
		w.Name, cfg.Name(), mp, float64(cycles)/(clock.CyclesPerMicrosecond*1000), cycles)
	st := k.Stats()
	s := &st
	fmt.Printf("  syscalls        %12d\n", s.Syscalls)
	fmt.Printf("  restarts        %12d\n", s.Restarts)
	fmt.Printf("  context switches%12d\n", s.ContextSwitches)
	fmt.Printf("  user cycles     %12d\n", s.UserCycles)
	fmt.Printf("  kernel cycles   %12d\n", s.KernelCycles)
	fmt.Printf("  idle cycles     %12d\n", s.IdleCycles)
	fmt.Printf("  preemptions: user %d, ipc-point %d, in-kernel %d\n",
		s.PreemptsUser, s.PreemptsPoint, s.PreemptsKernel)
	fmt.Printf("  ipc fastpath: hits %d, misses %d, fallbacks %d\n",
		s.FastpathHits, s.FastpathMisses, s.FastpathFallbacks)
	fmt.Printf("  ipc zerocopy: shares %d, cow breaks %d, fallbacks %d\n",
		s.ZeroCopyShares, s.ZeroCopyCOWBreaks, s.ZeroCopyFallbacks)
	if *ckptUS > 0 {
		avoided := ck.cleanFrames * int(mem.PageSize)
		ratio := 0.0
		if ck.deltaBytes+avoided > 0 {
			ratio = float64(ck.deltaBytes) / float64(ck.deltaBytes+avoided)
		}
		fmt.Printf("  ckpt: %d full (%d KiB), %d delta (%d KiB shipped, %d KiB clean-skipped, incremental ratio %.3f)\n",
			ck.fulls, ck.fullBytes>>10, ck.deltas, ck.deltaBytes>>10, avoided>>10, ratio)
	}
	if w.NIC != nil {
		nc := w.NIC.Counters()
		fmt.Printf("  nic: irqs %d, coalesced %d, drains %d, ring-full stalls %d, unshares %d\n",
			nc.IRQs, nc.Coalesced, nc.Drains, nc.RingFullStalls, nc.Unshares)
		fmt.Printf("  nic bytes: tx %d (%d frames), rx %d (%d frames)\n",
			nc.TxBytes, nc.TxFrames, nc.RxBytes, nc.RxFrames)
	}
	es := k.ExecStats()
	fmt.Printf("  cpu decode: pages %d, stale resets %d\n", es.PagesDecoded, es.StaleResets)
	fmt.Printf("  cpu blocks: built %d, hits %d, bails %d, invalidations %d\n",
		es.BlocksBuilt, es.BlockHits, es.BlockBails, es.BlockInvalidations)
	if *cpus > 1 {
		fmt.Printf("  cross-CPU: ipis %d, steals %d\n", s.IPIs, s.Steals)
		for _, ls := range k.LockStats() {
			if ls.Acquires > 0 {
				fmt.Printf("  lock %-5s acquires %8d contended %6d wait %10d cycles\n",
					ls.Name, ls.Acquires, ls.Contended, ls.WaitCycles)
			}
		}
		if cfg.LockModel == core.LockFine {
			// Per-instance breakdown: which queues and spaces actually
			// contend. Capped to the busiest instances; the per-kind rows
			// above carry the totals.
			inst := k.FineLockStats()
			sort.Slice(inst, func(i, j int) bool { return inst[i].Acquires > inst[j].Acquires })
			const top = 12
			fmt.Printf("  fine lock instances (top %d by acquires):\n", top)
			for i, ls := range inst {
				if i >= top || ls.Acquires == 0 {
					break
				}
				fmt.Printf("    %-8s acquires %8d contended %6d wait %10d cycles\n",
					ls.Name, ls.Acquires, ls.Contended, ls.WaitCycles)
			}
		}
	}
	for _, cl := range []mmu.FaultClass{mmu.FaultSoft, mmu.FaultHard} {
		for _, side := range []core.FaultSide{core.FaultSame, core.FaultCross} {
			key := core.FaultKey{Class: cl, Side: side}
			if n := s.FaultCount[key]; n > 0 {
				sideName := "client-side"
				if side == core.FaultCross {
					sideName = "server-side"
				}
				fmt.Printf("  %s %s faults: %d (avg remedy %.1f µs, avg rollback %.2f µs)\n",
					sideName, cl, n,
					float64(s.FaultRemedy[key])/float64(n)/clock.CyclesPerMicrosecond,
					float64(s.FaultRollback[key])/float64(n)/clock.CyclesPerMicrosecond)
			}
		}
	}
	if p != nil {
		fmt.Printf("  probe: avg %.2f µs, p50 %.2f, p95 %.2f, p99 %.2f, max %.1f µs, runs %d, missed %d\n",
			p.Lat.Avg(), p.Lat.P50(), p.Lat.P95(), p.Lat.P99(), p.Lat.Max(), p.Runs, p.Misses)
		p.Stop()
	}

	type nc struct {
		n int
		c uint64
	}
	var tops []nc
	for n, c := range s.SyscallsByNum {
		if c > 0 {
			tops = append(tops, nc{n, c})
		}
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].c > tops[j].c })
	if len(tops) > *topN {
		tops = tops[:*topN]
	}
	fmt.Println("  top syscalls:")
	for _, t := range tops {
		fmt.Printf("    %-40s %10d\n", sys.Name(t.n), t.c)
	}
	if m != nil {
		k.SyncTraceMetrics()
		if w.NIC != nil {
			w.NIC.PublishMetrics(m.Registry)
		}
		fmt.Print(m.Registry.Render("kernel metrics"))
	}
	if k.ProfileEnabled() {
		snap := k.ProfileSnapshot()
		fmt.Printf("  profiled cycles: %d attributed (overflow %d)\n", snap.TotalCycles(), snap.Overflow)
		fmt.Println("  top attribution triples (path / syscall / pc-bucket):")
		for _, s := range snap.Top(10) {
			fmt.Printf("    %-16s %-40s %-14s %12d\n", s.Path, s.SysName(), s.PCLabel(), s.Cycles)
		}
		if *profileOut != "" {
			f, err := os.Create(*profileOut)
			if err != nil {
				fail(err)
			}
			if err := snap.WritePprof(f); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("wrote cycle profile to %s — open with `go tool pprof %s`\n", *profileOut, *profileOut)
		}
		if *profileFolded != "" {
			f, err := os.Create(*profileFolded)
			if err != nil {
				fail(err)
			}
			if err := snap.WriteFolded(f); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("wrote folded stacks to %s — flamegraph.pl or speedscope input\n", *profileFolded)
		}
	}
	if ring != nil && *traceBuf > 0 {
		fmt.Println("kernel trace (most recent events):")
		fmt.Print(ring.Dump())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := ring.ExportJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d trace events (%d dropped) to %s — open in https://ui.perfetto.dev or chrome://tracing\n",
			ring.Len(), ring.Dropped(), *traceOut)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "flukerun:", err)
	os.Exit(1)
}

// usage reports a bad flag value and exits with the flag package's usage
// text and conventional status 2 — no silent defaulting.
func usage(err error) {
	fmt.Fprintln(os.Stderr, "flukerun:", err)
	flag.Usage()
	os.Exit(2)
}
