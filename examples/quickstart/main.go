// Quickstart: boot a simulated Fluke kernel, load a two-thread guest
// program that synchronizes with a kernel mutex, run it, and read back
// the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

const (
	codeBase = 0x0001_0000
	dataBase = 0x0004_0000
	mtxVA    = dataBase + 0x10  // mutex handle (a virtual address, as in Fluke)
	ctrVA    = dataBase + 0x100 // shared counter
	rounds   = 1000
)

func main() {
	// Pick a kernel configuration: the execution model and preemption
	// style are per-kernel build options, exactly as in the paper.
	cfg := core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial}
	k := core.New(cfg)

	// A space associates memory and threads (Table 2).
	s := k.NewSpace()

	// Map a demand-zero data window and bind a kernel mutex object at a
	// handle address inside it.
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(0x10000, true)}
	k.BindFresh(s, data)
	if _, err := k.MapInto(s, data, dataBase, 0, 0x10000, mmu.PermRW); err != nil {
		log.Fatal(err)
	}
	mtx, _ := obj.New(sys.ObjMutex)
	if err := k.Bind(s, mtxVA, mtx); err != nil {
		log.Fatal(err)
	}

	// Two threads increment a shared counter under the mutex.
	b := prog.New(codeBase)
	b.Label("worker").Movi(6, 0).
		Label("loop").
		MutexLock(mtxVA).
		Movi(4, ctrVA).Ld(5, 4, 0).Addi(5, 5, 1).St(4, 0, 5).
		MutexUnlock(mtxVA).
		Addi(6, 6, 1).Movi(5, rounds).Blt(6, 5, "loop").
		Halt()
	img := b.MustAssemble()
	if _, err := k.LoadImage(s, codeBase, img); err != nil {
		log.Fatal(err)
	}
	var workers []*obj.Thread
	for i := 0; i < 2; i++ {
		t := k.NewThread(s, 10)
		t.Regs.PC = b.Addr("worker")
		k.StartThread(t)
		workers = append(workers, t)
	}

	// Run until the system quiesces.
	k.Run()
	for _, w := range workers {
		if !w.Exited {
			log.Fatalf("worker %d did not finish", w.ID)
		}
	}
	out, err := k.ReadMem(s, ctrVA, 4)
	if err != nil {
		log.Fatal(err)
	}
	counter := uint32(out[0]) | uint32(out[1])<<8 | uint32(out[2])<<16 | uint32(out[3])<<24

	fmt.Printf("kernel configuration: %s\n", cfg.Name())
	fmt.Printf("shared counter: %d (want %d)\n", counter, 2*rounds)
	fmt.Printf("virtual time: %.2f ms, syscalls: %d, context switches: %d\n",
		float64(k.Clock.Now())/200_000, k.Stats().Syscalls, k.Stats().ContextSwitches)
}
