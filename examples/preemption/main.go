// Preemption: run the Table 6 experiment live at a small scale — a 1 ms
// periodic high-priority thread measuring its scheduling latency while
// flukeperf hammers the kernel — under all five kernel configurations.
//
//	go run ./examples/preemption
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	sc := workload.FlukeperfScale{
		Nulls: 10_000, MutexPairs: 5_000, PingPong: 1_000, RPCs: 1_000,
		BigTransfers: 1, BigWords: 1 << 20 / 4, Searches: 2,
	}
	fmt.Println("1 ms periodic high-priority thread vs flukeperf (small scale):")
	fmt.Printf("%-14s %12s %12s %8s %8s\n", "configuration", "avg (µs)", "max (µs)", "runs", "missed")
	for _, cfg := range core.Configurations() {
		k := core.New(cfg)
		w, err := workload.NewFlukeperf(k, sc)
		if err != nil {
			log.Fatal(err)
		}
		p := workload.InstallProbe(k, 0, 0)
		if _, err := w.Run(1 << 62); err != nil {
			log.Fatal(err)
		}
		p.Stop()
		fmt.Printf("%-14s %12.2f %12.1f %8d %8d\n",
			cfg.Name(), p.Lat.Avg(), p.Lat.Max(), p.Runs, p.Misses)
	}
	fmt.Println()
	fmt.Println("full preemption bounds latency tightly; the non-preemptible kernels")
	fmt.Println("stall the probe for as long as their longest kernel operation (the")
	fmt.Println("large IPC copy); the partial-preemption point on the IPC path caps")
	fmt.Println("that at the longest *other* kernel path (region_search).")
}
