// Migration: move a running process between two kernel instances built
// with different execution models — from a fully-preemptible process-model
// kernel to an interrupt-model kernel — mid-computation. Because the
// atomic API keeps every continuation in the explicit user register
// state, there is no kernel-stack state to translate between models.
//
// The move uses the pre-copy loop: warm snapshots ship the process's
// memory while it keeps running (the first full, the rest only what the
// dirty tracker saw change), and the process is frozen only for the
// final residual. The example prints the per-round accounting and the
// downtime against what a stop-and-copy freeze would have cost.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

const (
	codeBase = 0x0001_0000
	dataBase = 0x0004_0000
	sumVA    = dataBase + 0x100
	bulkBase = 0x0020_0000
	bulkLen  = 1 << 20 // resident but idle: what pre-copy ships warm
	n        = 2_000_000
)

func main() {
	// Source kernel: process model, fully preemptible.
	k1 := core.New(core.Config{Model: core.ModelProcess, Preempt: core.PreemptFull})
	s1 := k1.NewSpace()
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(0x10000, true)}
	k1.BindFresh(s1, data)
	if _, err := k1.MapInto(s1, data, dataBase, 0, 0x10000, mmu.PermRW); err != nil {
		log.Fatal(err)
	}
	// A fully resident 1 MiB buffer the guest never rewrites: stop-and-copy
	// would freeze the process for all of it, pre-copy ships it warm.
	bulk := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(bulkLen, true)}
	k1.BindFresh(s1, bulk)
	if _, err := k1.MapInto(s1, bulk, bulkBase, 0, bulkLen, mmu.PermRW); err != nil {
		log.Fatal(err)
	}
	if err := k1.WriteMem(s1, bulkBase, make([]byte, bulkLen)); err != nil {
		log.Fatal(err)
	}

	// The guest sums 1..n, publishing the running sum as it goes.
	b := prog.New(codeBase)
	b.Movi(6, 0).Movi(3, 0).
		Label("loop").
		Addi(6, 6, 1).
		Add(3, 3, 6).
		Movi(4, sumVA).St(4, 0, 3).
		Movi(5, n).Blt(6, 5, "loop").
		Halt()
	th, err := k1.SpawnProgram(s1, codeBase, b.MustAssemble(), 10)
	if err != nil {
		log.Fatal(err)
	}
	_ = th

	// Run roughly half-way on the source kernel.
	k1.RunFor(150_000)
	half, _ := k1.ReadMem(s1, sumVA, 4)
	fmt.Printf("source kernel  (%s): partial sum after 0.75 ms = %d\n",
		k1.Config().Name(), le32(half))

	// Pre-copy migrate to an interrupt-model kernel: the sum keeps
	// advancing on the source through every warm round.
	k2 := core.New(core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial})
	opt := checkpoint.MigrateOptions{}
	s2, threads, rep, err := checkpoint.MigratePrecopy(k1, s1, k2, opt)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range rep.Rounds {
		kind := "warm delta"
		switch {
		case i == 0:
			kind = "warm full "
		case r.Final:
			kind = "stop-copy "
		}
		fmt.Printf("  round %d %s: %4d frames, %7d bytes, %7d cycles\n",
			i, kind, r.Frames, r.Bytes, r.Cycles)
	}
	fmt.Printf("migrated %d thread(s) to %s; source space dead: %v\n",
		len(threads), k2.Config().Name(), s1.Dead)
	sc := rep.StopAndCopyDowntime(opt)
	fmt.Printf("downtime: %d cycles frozen vs %d for stop-and-copy (%.1f%%)\n",
		rep.DowntimeCycles, sc, 100*float64(rep.DowntimeCycles)/float64(sc))

	k2.Run()
	out, _ := k2.ReadMem(s2, sumVA, 4)
	// The guest's 32-bit adds wrap, so compare mod 2^32.
	want := uint32(uint64(n) * uint64(n+1) / 2 & 0xFFFF_FFFF)
	fmt.Printf("target kernel  (%s): final sum = %d (want %d)\n",
		k2.Config().Name(), le32(out), want)
	if le32(out) == want {
		fmt.Println("computation finished correctly on the other execution model")
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
