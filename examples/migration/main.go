// Migration: move a running process between two kernel instances built
// with different execution models — from a fully-preemptible process-model
// kernel to an interrupt-model kernel — mid-computation. Because the
// atomic API keeps every continuation in the explicit user register
// state, there is no kernel-stack state to translate between models.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

const (
	codeBase = 0x0001_0000
	dataBase = 0x0004_0000
	sumVA    = dataBase + 0x100
	n        = 50_000
)

func main() {
	// Source kernel: process model, fully preemptible.
	k1 := core.New(core.Config{Model: core.ModelProcess, Preempt: core.PreemptFull})
	s1 := k1.NewSpace()
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(0x10000, true)}
	k1.BindFresh(s1, data)
	if _, err := k1.MapInto(s1, data, dataBase, 0, 0x10000, mmu.PermRW); err != nil {
		log.Fatal(err)
	}

	// The guest sums 1..n, yielding periodically.
	b := prog.New(codeBase)
	b.Movi(6, 0).Movi(3, 0).
		Label("loop").
		Addi(6, 6, 1).
		Add(3, 3, 6).
		Movi(4, sumVA).St(4, 0, 3).
		Movi(5, n).Blt(6, 5, "loop").
		Halt()
	th, err := k1.SpawnProgram(s1, codeBase, b.MustAssemble(), 10)
	if err != nil {
		log.Fatal(err)
	}
	_ = th

	// Run roughly half-way on the source kernel.
	k1.RunFor(150_000)
	half, _ := k1.ReadMem(s1, sumVA, 4)
	fmt.Printf("source kernel  (%s): partial sum after 0.75 ms = %d\n",
		k1.Config().Name(), le32(half))

	// Migrate to an interrupt-model kernel.
	k2 := core.New(core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial})
	s2, threads, err := checkpoint.Migrate(k1, s1, k2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrated %d thread(s) to %s; source space dead: %v\n",
		len(threads), k2.Config().Name(), s1.Dead)

	k2.Run()
	out, _ := k2.ReadMem(s2, sumVA, 4)
	want := uint32(n) * (n + 1) / 2
	fmt.Printf("target kernel  (%s): final sum = %d (want %d)\n",
		k2.Config().Name(), le32(out), want)
	if le32(out) == want {
		fmt.Println("computation finished correctly on the other execution model")
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
