// Checkpoint: a user-level manager checkpoints a running process in the
// middle of its computation — while one thread is blocked in cond_wait
// and another sleeps — destroys it, re-creates it from the captured
// state, and shows the result is indistinguishable from an undisturbed
// run. This is the paper's motivating application for the atomic API
// (§1, §4.1).
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

const (
	codeBase = 0x0001_0000
	dataBase = 0x0004_0000
	mtxVA    = dataBase + 0x10
	cndVA    = dataBase + 0x14
	turnVA   = dataBase + 0x100
	curVA    = dataBase + 0x104
	logVA    = dataBase + 0x200
	rounds   = 10
)

// build creates the two-thread alternating workload in a fresh space.
func build(k *core.Kernel) (*obj.Space, []*obj.Thread, error) {
	s := k.NewSpace()
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(0x10000, true)}
	k.BindFresh(s, data)
	if _, err := k.MapInto(s, data, dataBase, 0, 0x10000, mmu.PermRW); err != nil {
		return nil, nil, err
	}
	for _, h := range []struct {
		va uint32
		ot sys.ObjType
	}{{mtxVA, sys.ObjMutex}, {cndVA, sys.ObjCond}} {
		o, _ := obj.New(h.ot)
		if err := k.Bind(s, h.va, o); err != nil {
			return nil, nil, err
		}
	}
	b := prog.New(codeBase)
	worker := func(name string, myTurn, nextTurn, tag uint32) {
		b.Label(name).Movi(6, 0).
			Label(name+".round").
			MutexLock(mtxVA).
			Label(name+".wait").
			Movi(4, turnVA).Ld(5, 4, 0).Movi(2, myTurn)
		b.Beq(5, 2, name+".go")
		b.CondWait(cndVA, mtxVA).Jmp(name+".wait").
			Label(name+".go").
			Movi(4, curVA).Ld(5, 4, 0).
			Movi(2, 2).Shl(3, 5, 2).Addi(3, 3, logVA).
			Addi(5, 5, 1).St(4, 0, 5).
			Movi(2, tag).Add(2, 2, 6).St(3, 0, 2).
			Movi(4, turnVA).Movi(5, nextTurn).St(4, 0, 5).
			CondBroadcast(cndVA).
			MutexUnlock(mtxVA).
			ThreadSleepUS(300).
			Addi(6, 6, 1).Movi(5, rounds).Blt(6, 5, name+".round").
			Halt()
	}
	worker("wA", 0, 1, 1000)
	worker("wB", 1, 0, 2000)
	if _, err := k.LoadImage(s, codeBase, b.MustAssemble()); err != nil {
		return nil, nil, err
	}
	var threads []*obj.Thread
	for _, label := range []string{"wA", "wB"} {
		t := k.NewThread(s, 10)
		t.Regs.PC = b.Addr(label)
		k.StartThread(t)
		threads = append(threads, t)
	}
	return s, threads, nil
}

func result(k *core.Kernel, s *obj.Space) []byte {
	out, err := k.ReadMem(s, logVA, rounds*2*4)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func main() {
	// Reference: an undisturbed run.
	k0 := core.New(core.Config{Model: core.ModelProcess})
	s0, _, err := build(k0)
	if err != nil {
		log.Fatal(err)
	}
	k0.Run()
	want := result(k0, s0)

	// Checkpointed run: stop mid-way, capture, destroy, restore.
	k1 := core.New(core.Config{Model: core.ModelProcess})
	s1, _, err := build(k1)
	if err != nil {
		log.Fatal(err)
	}
	k1.RunFor(300_000) // 1.5 ms in: both threads mid-flight

	img, err := checkpoint.Capture(k1, s1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("captured mid-run; thread continuations in the image:")
	for _, tr := range img.Threads {
		pc := tr.State[core.TSPc]
		where := "user code"
		if n := cpu.SyscallNum(pc); n >= 0 {
			where = "restart point: " + sys.Name(n)
		}
		fmt.Printf("  thread %d: PC=%#x (%s)\n", tr.OldID, pc, where)
	}
	for _, t := range append([]*obj.Thread(nil), s1.Threads...) {
		k1.DestroyThread(t)
	}
	fmt.Println("original threads destroyed")

	k2 := core.New(core.Config{Model: core.ModelProcess})
	s2, threads, err := checkpoint.Restore(k2, img)
	if err != nil {
		log.Fatal(err)
	}
	checkpoint.StartAll(k2, img, threads)
	k2.Run()
	got := result(k2, s2)

	if bytes.Equal(got, want) {
		fmt.Println("restored run produced a byte-identical result: correctness holds")
	} else {
		fmt.Println("MISMATCH — correctness violated")
	}
}
