// Netserve: the simulated network stack live — a multi-queue NIC with
// TX/RX descriptor rings in guest memory, a user-mode network server
// (driver thread draining the ring, protocol workers answering framed
// requests over IPC), and a fleet of clients hammering it. The example
// runs the same load twice — everything off, then interrupt coalescing +
// zero-copy replies — and shows where the cycles went.
//
//	go run ./examples/netserve
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	sc := experiments.NetloadScale{
		Queues: 1, Workers: 4, Clients: 8, RPCs: 8, RespWords: 16384, // 64 KiB responses
	}
	fmt.Printf("netserve: %d clients x %d RPCs, %d KiB responses, %d worker(s)\n\n",
		sc.Clients, sc.RPCs, sc.RespWords*4/1024, sc.Workers)

	run := func(mode, label string) experiments.NetloadResult {
		res, err := experiments.NetloadCell(mode, 1, core.LockBig, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", label)
		fmt.Printf("  throughput %8.1f MB/virtual-s   p50 %6.0f µs   p99 %6.0f µs\n",
			res.MBPerVirtualS, res.P50, res.P99)
		fmt.Printf("  nic: %d irqs for %d frames (%d coalesced), %d ring-full stalls\n",
			res.NIC.IRQs, res.NIC.RxFrames, res.NIC.Coalesced, res.NIC.RingFullStalls)
		fmt.Printf("  kernel: %d cycles, %d zero-copy page shares, %d DMA unshares\n\n",
			res.KernelCycles, res.ZeroCopyShares, res.NIC.Unshares)
		return res
	}

	naive := run(experiments.NetloadNaive, "naive (interrupt per frame, copied replies)")
	tuned := run(experiments.NetloadTuned, "tuned (coalesced interrupts, zero-copy replies)")

	fmt.Printf("speedup: %.2fx simulated throughput\n", tuned.MBPerVirtualS/naive.MBPerVirtualS)
	fmt.Println("same client-visible bytes either way — the equivalence tests pin that;")
	fmt.Println("only the interrupt discipline and the page-copy cycles changed.")
}
