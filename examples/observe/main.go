// Observe: the observability stack end to end. A client and a server
// exchange a run of small RPCs (the paper's reliable-transfer path,
// ipc_client_connect_send_over_receive / ipc_reply_wait_receive) while
// the kernel records typed trace events into a ring and updates its
// metrics registry. Afterwards the example prints the metrics snapshot —
// per-syscall latency histograms, context switches, IPC bytes — and
// writes the trace as Perfetto/Chrome trace_event JSON.
//
//	go run ./examples/observe
//	go run ./examples/observe -out observe.json
//
// Open the JSON in https://ui.perfetto.dev (or chrome://tracing) to see
// each thread's syscall spans on its own track.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
	"repro/internal/trace"
)

const (
	codeBase = 0x0001_0000
	dataBase = 0x0004_0000
	sendBuf  = dataBase + 0x1000
	recvBuf  = dataBase + 0x8000
	replyBuf = dataBase + 0xC000
	rounds   = 20
	words    = 256 // 1 KB per RPC
)

func main() {
	out := flag.String("out", "observe.json", "Perfetto trace output file")
	flag.Parse()

	k := core.New(core.Config{Model: core.ModelProcess, Preempt: core.PreemptPartial})
	m := k.EnableMetrics()
	ring := trace.NewRing(1 << 16)
	k.Tracer = ring

	s := k.NewSpace()
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(0x10000, true)}
	k.BindFresh(s, data)
	if _, err := k.MapInto(s, data, dataBase, 0, 0x10000, mmu.PermRW); err != nil {
		log.Fatal(err)
	}

	po, _ := obj.New(sys.ObjPort)
	pso, _ := obj.New(sys.ObjPortset)
	port, ps := po.(*obj.Port), pso.(*obj.Portset)
	k.BindFresh(s, port)
	psVA := k.BindFresh(s, ps)
	ps.AddPort(port)
	refVA := k.BindFresh(s, &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: port})

	// Server: the flukeperf echo-service loop — receive, then
	// reply-and-wait forever. The run ends when the client halts and the
	// system goes idle.
	srv := prog.New(codeBase + 0x8000)
	srv.IPCWaitReceive(recvBuf, words, psVA).
		Label("serve").
		IPCReplyWaitReceive(replyBuf, 8, psVA, recvBuf, words).
		Jmp("serve")

	cli := prog.New(codeBase)
	cli.Movi(6, 0).
		Label("ping").
		Movi(5, rounds)
	cli.Beq(6, 5, "cli.done")
	cli.IPCClientConnectSendOverReceive(sendBuf, words, refVA, replyBuf, 8).
		IPCClientDisconnect().
		Addi(6, 6, 1).
		Jmp("ping").
		Label("cli.done").
		Halt()

	if _, err := k.LoadImage(s, srv.Base(), srv.MustAssemble()); err != nil {
		log.Fatal(err)
	}
	client, err := k.SpawnProgram(s, cli.Base(), cli.MustAssemble(), 10)
	if err != nil {
		log.Fatal(err)
	}
	server := k.NewThread(s, 10)
	server.Regs.PC = srv.Base()
	k.StartThread(server)

	k.RunFor(1_000_000_000)
	if !client.Exited {
		log.Fatalf("client stuck (state=%v pc=%#x)", client.State, client.Regs.PC)
	}

	fmt.Printf("%d RPC rounds of %d bytes, virtual time %.2f ms\n\n",
		rounds, words*4, clock.Micros(k.Clock.Now())/1000)
	fmt.Print(m.Registry.Render("observe: kernel metrics"))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := ring.ExportJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d trace events to %s — open in https://ui.perfetto.dev\n",
		ring.Len(), *out)
}
