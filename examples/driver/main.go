// Driver: the paper's §5.6/§5.2 arrangement live — a user-mode device
// driver thread serving disk reads over IPC, programming a memory-mapped
// virtual block device and fielding its completion interrupts with
// irq_wait. A client reads the "boot sector" through it, and the example
// then shows how kernel preemptibility decides interrupt-handling latency.
//
//	go run ./examples/driver
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
	"repro/internal/workload"
)

const (
	codeBase = 0x0001_0000
	dataBase = 0x0004_0000
)

func main() {
	k := core.New(core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial})
	dr, err := dev.Attach(k, 64 /*sectors*/, 5 /*IRQ line*/, 0, 16)
	if err != nil {
		log.Fatal(err)
	}
	boot := make([]byte, dev.SectorSize)
	copy(boot, []byte("FLUKE boot sector: the registers are the continuation."))
	if err := dr.Device.LoadMedium(0, boot); err != nil {
		log.Fatal(err)
	}

	// Client space + program: read sector 0 through the driver.
	cs := k.NewSpace()
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(4*mem.PageSize, true)}
	k.BindFresh(cs, data)
	if _, err := k.MapInto(cs, data, dataBase, 0, 4*mem.PageSize, mmu.PermRW); err != nil {
		log.Fatal(err)
	}
	refVA := dr.ClientRef(k, cs)
	b := prog.New(codeBase)
	b.Movi(4, dataBase+0x100).Movi(5, 0).St(4, 0, 5).
		IPCClientConnectSendOverReceive(dataBase+0x100, 1, refVA, dataBase+0x1000, dev.SectorSize/4).
		IPCClientDisconnect().
		Halt()
	client, err := k.SpawnProgram(cs, codeBase, b.MustAssemble(), 10)
	if err != nil {
		log.Fatal(err)
	}
	k.RunFor(1_000_000_000)
	if !client.Exited {
		log.Fatalf("client stuck (driver %v)", dr.Thread.State)
	}
	out, err := k.ReadMem(cs, dataBase+0x1000, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client read sector 0 via the user-mode driver:\n  %q\n", out[:55])
	fmt.Printf("device stats: %d read(s); driver is an ordinary thread at priority 16\n\n", dr.Device.Reads)

	fmt.Println("now the same service while flukeperf hammers the kernel, per configuration:")
	rows, err := experiments.DriverLatency(workload.FlukeperfScale{
		Nulls: 5_000, MutexPairs: 5_000, PingPong: 1_000, RPCs: 1_000,
		BigTransfers: 2, BigWords: 1 << 20 / 4, Searches: 2,
	}, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.DriverLatencyRender(rows))
	fmt.Println("preemption latency has become interrupt-handling latency (§5.2).")
}
