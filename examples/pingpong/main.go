// Pingpong: the paper's §4.3 IPC walk-through, live. A client sends
// 8,192 bytes with ipc_client_connect_send; the server receives only the
// first 6,144 and goes quiet. The example then prints the blocked
// client's exported registers, showing exactly the state the paper
// describes: the buffer pointer advanced by 6,144, the count reduced to
// 2,048 bytes, and the continuation rewritten from the connect_send
// entrypoint to ipc_client_send.
//
//	go run ./examples/pingpong
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

const (
	codeBase = 0x0001_0000
	dataBase = 0x0004_0000
	sendBuf  = dataBase + 0x1800 // mirrors the paper's 0x...1800 example
	recvBuf  = dataBase + 0x8000
)

func main() {
	k := core.New(core.Config{Model: core.ModelInterrupt})
	s := k.NewSpace()
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(0x10000, true)}
	k.BindFresh(s, data)
	if _, err := k.MapInto(s, data, dataBase, 0, 0x10000, mmu.PermRW); err != nil {
		log.Fatal(err)
	}

	// IPC plumbing: a Port on the server side, a Portset the server
	// waits on, and a client-side Reference pointing at the Port.
	po, _ := obj.New(sys.ObjPort)
	pso, _ := obj.New(sys.ObjPortset)
	port, ps := po.(*obj.Port), pso.(*obj.Portset)
	k.BindFresh(s, port)
	psVA := k.BindFresh(s, ps)
	ps.AddPort(port)
	refVA := k.BindFresh(s, &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: port})

	srv := prog.New(codeBase + 0x8000)
	srv.IPCWaitReceive(recvBuf, 1536, psVA). // 6144 bytes and no more
							ThreadSleepUS(1 << 30).
							Halt()
	cli := prog.New(codeBase)
	cli.IPCClientConnectSend(sendBuf, 2048, refVA).Halt() // 8192 bytes

	if _, err := k.LoadImage(s, srv.Base(), srv.MustAssemble()); err != nil {
		log.Fatal(err)
	}
	client, err := k.SpawnProgram(s, cli.Base(), cli.MustAssemble(), 10)
	if err != nil {
		log.Fatal(err)
	}
	server := k.NewThread(s, 10)
	server.Regs.PC = srv.Base()
	k.StartThread(server)

	k.RunFor(100_000_000)

	fmt.Println("client asked to send 8192 bytes from", fmt.Sprintf("%#x", uint32(sendBuf)))
	fmt.Println("server received the first 6144 bytes, then went quiet")
	fmt.Println()
	fmt.Println("the blocked client's exported state (thread_get_state view):")
	w := core.EncodeThreadState(client)
	fmt.Printf("  PC  = %#x", w[core.TSPc])
	if n := cpu.SyscallNum(w[core.TSPc]); n >= 0 {
		fmt.Printf("  (the %s entrypoint — rewritten from %s)\n",
			sys.Name(n), sys.Name(sys.NIPCClientConnectSend))
	} else {
		fmt.Println()
	}
	fmt.Printf("  R1  = %#x  (buffer pointer, advanced by 6144)\n", w[core.TSR0+1])
	fmt.Printf("  R2  = %d      (words left = %d bytes)\n", w[core.TSR0+2], 4*w[core.TSR0+2])
	fmt.Println()
	fmt.Println("\"the parameter registers in the interrupted processor state have been")
	fmt.Println(" updated to indicate the memory about to be operated on\" — §4.2")
}
